#include "shard/sharded_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "delta/merge.h"

namespace cstore::shard {

namespace {

/// The closed interval `predicate` confines `column` to (conjunct
/// intersection; unconstrained = the whole int64 line).
std::pair<int64_t, int64_t> PredicateInterval(
    const std::vector<core::FactPredicate>& predicate,
    const std::string& column) {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  for (const core::FactPredicate& p : predicate) {
    if (p.column != column) continue;
    lo = std::max(lo, p.lo);
    hi = std::min(hi, p.hi);
  }
  return {lo, hi};
}

/// Integer lineorder columns a delete predicate may range over (the
/// engine::Store contract).
bool IsFactIntColumn(const std::string& name) {
  static const char* const kNames[] = {
      "orderkey",   "linenumber",    "custkey",    "partkey", "suppkey",
      "orderdate",  "quantity",      "extendedprice", "ordtotalprice",
      "discount",   "revenue",       "supplycost", "tax",     "commitdate"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(ssb::SsbData data,
                                                         Options options) {
  std::unique_ptr<ShardedStore> store(new ShardedStore(std::move(options)));
  store->ranges_ = YearRanges(store->options_.num_shards);
  std::vector<ssb::SsbData> parts = PartitionByYear(data, store->ranges_);
  for (size_t s = 0; s < parts.size(); ++s) {
    const auto [year_lo, year_hi] = store->ranges_[s];
    store->manifest_.shards.push_back(DescribeShard(
        static_cast<uint32_t>(s), year_lo, year_hi, parts[s].lineorder));
    CSTORE_ASSIGN_OR_RETURN(
        std::shared_ptr<engine::StoreVersion> v,
        engine::Store::BuildVersion(1, std::move(parts[s]),
                                    store->options_.store));
    store->current_.push_back(std::move(v));
  }
  if (store->options_.merge_threshold_rows > 0) {
    store->merger_ = std::thread([s = store.get()] { s->MergerLoop(); });
  }
  return store;
}

ShardedStore::~ShardedStore() {
  if (merger_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(merge_cv_mu_);
      stop_ = true;
    }
    merge_cv_.notify_all();
    merger_.join();
  }
}

ShardedStore::Pinned ShardedStore::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  Pinned p;
  p.epoch = epoch_;
  p.shards.reserve(current_.size());
  for (size_t s = 0; s < current_.size(); ++s) {
    ShardPin pin;
    pin.version = current_[s];
    pin.snap.epoch = epoch_;
    pin.snap.delta_rows = current_[s]->writes->size();
    pin.snap.tombstones = current_[s]->writes->TombstonesAt(epoch_);
    pin.info = manifest_.shards[s];
    p.shards.push_back(std::move(pin));
  }
  return p;
}

Result<engine::WriteOutcome> ShardedStore::Insert(
    std::string_view table, std::vector<ssb::LineorderRow> rows) {
  if (table != "lineorder") {
    return Status::NotSupported(
        "only the fact table (lineorder) is writeable; dimensions are "
        "read-only join sides");
  }
  // FK validation against the (immutable, shard-identical) dimensions — the
  // same front door as engine::Store::Insert. Pinning shard 0 keeps the
  // dims alive across a concurrent merge swap. Validating orderdate against
  // the date dimension also makes the year routing below total: every
  // accepted orderdate falls in some shard's range.
  {
    std::shared_ptr<const engine::StoreVersion> v;
    {
      std::lock_guard<std::mutex> lock(mu_);
      v = current_[0];
    }
    const ssb::SsbData& dims = v->data;
    for (const ssb::LineorderRow& r : rows) {
      if (r.custkey < 1 ||
          r.custkey > static_cast<int64_t>(dims.customer.size()) ||
          r.suppkey < 1 ||
          r.suppkey > static_cast<int64_t>(dims.supplier.size()) ||
          r.partkey < 1 ||
          r.partkey > static_cast<int64_t>(dims.part.size())) {
        return Status::InvalidArgument("insert row has an unknown dimension key");
      }
      if (!std::binary_search(dims.date.datekey.begin(),
                              dims.date.datekey.end(), r.orderdate)) {
        return Status::InvalidArgument("insert row has an unknown orderdate");
      }
    }
  }
  // Route by orderdate year (ranges_ is immutable — no lock needed), then
  // commit every bucket under one epoch: snapshots see all of this insert
  // or none of it.
  std::vector<std::vector<ssb::LineorderRow>> buckets(ranges_.size());
  for (ssb::LineorderRow& r : rows) {
    const int64_t year = ssb::YearOfDatekey(r.orderdate);
    size_t s = 0;
    while (year > ranges_[s].second) ++s;
    CSTORE_CHECK(year >= ranges_[s].first);
    buckets[s].push_back(std::move(r));
  }
  engine::WriteOutcome out;
  out.rows_affected = rows.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.epoch = ++epoch_;
    for (size_t s = 0; s < buckets.size(); ++s) {
      for (ssb::LineorderRow& r : buckets[s]) {
        current_[s]->writes->Append(std::move(r), out.epoch);
      }
    }
    for (const auto& v : current_) out.delta_bytes += v->writes->delta_bytes();
  }
  if (options_.merge_threshold_rows > 0) merge_cv_.notify_one();
  return out;
}

Result<engine::WriteOutcome> ShardedStore::Delete(
    std::string_view table, const std::vector<core::FactPredicate>& predicate) {
  if (table != "lineorder") {
    return Status::NotSupported(
        "only the fact table (lineorder) is writeable; dimensions are "
        "read-only join sides");
  }
  for (const core::FactPredicate& p : predicate) {
    if (!IsFactIntColumn(p.column)) {
      return Status::InvalidArgument("delete predicate on unknown column " +
                                     p.column);
    }
  }
  const auto [od_lo, od_hi] = PredicateInterval(predicate, "orderdate");

  engine::WriteOutcome out;
  for (;;) {
    std::vector<std::shared_ptr<engine::StoreVersion>> pinned;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pinned = current_;
    }
    // The O(base_rows) scans run without the mutex, one per reachable
    // shard. A shard whose owned orderdate interval misses the predicate's
    // cannot hold a match — base rows by partitioning, unmerged inserts by
    // routing — so it is skipped outright.
    std::vector<char> scanned_shard(pinned.size(), 0);
    std::vector<std::vector<uint32_t>> base_hits(pinned.size());
    std::vector<std::vector<uint64_t>> delta_hits(pinned.size());
    std::vector<uint64_t> scanned(pinned.size(), 0);
    for (size_t s = 0; s < pinned.size(); ++s) {
      // The owned orderdate interval derives from ranges_ (immutable — the
      // manifest entry itself is rewritten under mu_ by merges).
      const int64_t shard_lo = ranges_[s].first * 10000 + 101;
      const int64_t shard_hi = ranges_[s].second * 10000 + 1231;
      if (od_hi < shard_lo || od_lo > shard_hi) continue;
      scanned_shard[s] = 1;
      scanned[s] = pinned[s]->writes->FindMatches(pinned[s]->data, predicate,
                                                  &base_hits[s], &delta_hits[s]);
    }
    std::lock_guard<std::mutex> lock(mu_);
    bool stale = false;
    for (size_t s = 0; s < pinned.size(); ++s) {
      if (scanned_shard[s] && current_[s] != pinned[s]) stale = true;
    }
    if (stale) continue;  // a merge swapped a scanned shard: positions are
                          // stale, re-evaluate against the new base
    out.epoch = ++epoch_;
    for (size_t s = 0; s < pinned.size(); ++s) {
      if (!scanned_shard[s]) continue;
      out.rows_affected += current_[s]->writes->ApplyDelete(
          base_hits[s], delta_hits[s], scanned[s], predicate, out.epoch);
    }
    for (const auto& v : current_) out.delta_bytes += v->writes->delta_bytes();
    break;
  }
  if (options_.merge_threshold_rows > 0) merge_cv_.notify_one();
  return out;
}

Status ShardedStore::MergeOnce() {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);

  Status first_error = Status::OK();
  bool any_dirty = false;
  for (size_t s = 0; s < ranges_.size(); ++s) {
    std::shared_ptr<engine::StoreVersion> old;
    uint64_t epoch = 0;
    uint64_t hwm = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = current_[s];
      epoch = epoch_;
      hwm = old->writes->size();
      if (hwm == 0 && old->writes->base_delete_log().empty()) {
        merge_stats_.shards_skipped++;  // clean shard: incremental skip
        continue;
      }
    }
    any_dirty = true;

    // Expensive part, no locks: fold the shard's writes into a fresh base
    // through the ordinary staged Build. Writers keep appending meanwhile.
    delta::MergePlan plan =
        delta::BuildMergePlan(old->data, *old->writes, epoch, hwm);
    Result<std::shared_ptr<engine::StoreVersion>> built =
        engine::Store::BuildVersion(old->id + 1, std::move(plan.data),
                                    options_.store);
    if (!built.ok()) {
      // Leave this shard untouched — its write store keeps accumulating and
      // the next cycle retries. Other shards still get their merge.
      std::lock_guard<std::mutex> lock(mu_);
      merge_stats_.failed_merges++;
      if (first_error.ok()) first_error = built.status();
      continue;
    }
    std::shared_ptr<engine::StoreVersion> next =
        std::move(built).ValueOrDie();

    {
      std::lock_guard<std::mutex> lock(mu_);
      // Migrate writes that committed after the merge snapshot onto the new
      // base — identical to engine::Store::MergeOnce, scoped to this shard.
      std::vector<std::pair<uint32_t, uint64_t>> moved;
      for (const auto& [pos, e] : old->writes->base_delete_log()) {
        if (e <= epoch) continue;  // folded into the merge (row dropped)
        const uint32_t np = plan.base_to_new[pos];
        CSTORE_CHECK(np != delta::MergePlan::kDropped);
        moved.emplace_back(np, e);
      }
      for (uint64_t i = 0; i < hwm; ++i) {
        const uint64_t d = old->writes->delta_deleted_at(i);
        if (d == 0 || d <= epoch) continue;
        const uint32_t np = plan.delta_to_new[i];
        CSTORE_CHECK(np != delta::MergePlan::kDropped);
        moved.emplace_back(np, d);
      }
      std::sort(moved.begin(), moved.end(), [](const auto& a, const auto& b) {
        return a.second < b.second;
      });
      for (const auto& [np, e] : moved) next->writes->TombstoneBase(np, e);
      const uint64_t tail_end = old->writes->size();
      for (uint64_t i = hwm; i < tail_end; ++i) {
        const uint64_t j = next->writes->Append(old->writes->row(i),
                                                old->writes->inserted_at(i));
        const uint64_t d = old->writes->delta_deleted_at(i);
        if (d != 0) next->writes->TombstoneDelta(j, d);
      }
      current_[s] = std::move(next);
      // Refresh the manifest entry from the rebuilt base: row/byte counts
      // and column bounds now describe the new file set.
      manifest_.shards[s] =
          DescribeShard(static_cast<uint32_t>(s), ranges_[s].first,
                        ranges_[s].second, current_[s]->data.lineorder);
      merge_stats_.shards_rebuilt++;
      merge_stats_.rows_out += current_[s]->data.lineorder.size();
      merge_stats_.base_dropped += plan.base_dropped;
      merge_stats_.inserts_applied += plan.inserts_applied;
    }
  }
  if (any_dirty) {
    std::lock_guard<std::mutex> lock(mu_);
    merge_stats_.merge_cycles++;
  }
  return first_error;
}

Manifest ShardedStore::manifest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_;
}

uint64_t ShardedStore::write_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t ShardedStore::unmerged_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rows = 0;
  for (const auto& v : current_) {
    rows += v->writes->size() + v->writes->base_delete_log().size();
  }
  return rows;
}

ShardedStore::MergeStats ShardedStore::merge_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_stats_;
}

void ShardedStore::MergerLoop() {
  std::chrono::milliseconds wait(20);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(merge_cv_mu_);
      merge_cv_.wait_for(lock, wait);
      if (stop_) return;
    }
    if (unmerged_rows() < options_.merge_threshold_rows) continue;
    const Status s = MergeOnce();
    if (s.ok()) {
      wait = std::chrono::milliseconds(20);
      continue;
    }
    std::fprintf(stderr, "cstore: background merge failed (will retry): %s\n",
                 s.ToString().c_str());
    wait = std::min(wait * 2, std::chrono::milliseconds(2000));
  }
}

}  // namespace cstore::shard
