// Fact-table partitioning: orderdate-year shards and the manifest that
// describes them.
//
// LINEORDER is generated sorted by (orderdate, quantity, discount), so
// partitioning by orderdate year is a contiguous slice per shard — each
// slice keeps the sort order every design exploits (between-predicate
// rewriting, zone-map runs on the leading column). Dimension tables are
// read-only join sides and small next to the fact table; every shard
// carries its own copy so a shard is self-contained: its files, its zone
// maps, its per-design physical databases, joinable without reaching into
// a sibling.
//
// The manifest is the pruning input ("Processing a Trillion Cells per
// Mouse Click": skip whole partitions by metadata before any page is
// touched): per shard, the closed orderdate interval its year range owns
// plus conservative min/max bounds for every integer fact column over the
// shard's *base* rows, and row/byte counts for placement decisions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ssb/data.h"

namespace cstore::shard {

/// One shard's manifest entry. `orderdate_lo/hi` derive from the owned
/// year range and stay valid under live writes (inserts are routed by
/// orderdate year, so no write can land outside them). `column_bounds`
/// cover base rows only — valid for pruning exactly when the shard has no
/// unmerged inserts (tombstones only shrink the true range, which keeps
/// the stored bounds conservative).
struct ShardInfo {
  uint32_t shard = 0;
  /// Closed calendar-year range this shard owns.
  int64_t year_lo = 0;
  int64_t year_hi = 0;
  /// Closed yyyymmdd interval implied by the year range.
  int64_t orderdate_lo = 0;
  int64_t orderdate_hi = 0;
  uint64_t base_rows = 0;
  /// Approximate in-memory bytes of the base fact slice.
  uint64_t base_bytes = 0;

  /// Conservative [lo, hi] over one integer fact column's base rows
  /// (lo > hi for an empty shard).
  struct ColumnBounds {
    std::string column;
    int64_t lo = 0;
    int64_t hi = 0;
  };
  std::vector<ColumnBounds> column_bounds;

  /// The stored bounds for `column`, or null when untracked (char columns).
  const ColumnBounds* BoundsFor(const std::string& column) const;
};

/// The shard map of one sharded store: entries in shard order, year ranges
/// contiguous and disjoint, covering all of SSB's 1992..1998.
struct Manifest {
  std::vector<ShardInfo> shards;

  /// Index of the shard owning `orderdate`'s year (CHECK-fails outside the
  /// covered range — Insert validates orderdate against the date dimension
  /// first, so routing is total).
  uint32_t ShardForOrderdate(int64_t orderdate) const;

  std::string ToJson() const;
};

/// [1992, 1998] split into `num_shards` contiguous, near-equal year runs
/// (num_shards clamped to [1, 7]).
std::vector<std::pair<int64_t, int64_t>> YearRanges(unsigned num_shards);

/// Splits `data` into one self-contained SsbData per year range: the fact
/// slice owning those years plus full copies of every dimension table.
/// Ranges must be ascending and contiguous over the data's orderdate span.
std::vector<ssb::SsbData> PartitionByYear(
    const ssb::SsbData& data,
    const std::vector<std::pair<int64_t, int64_t>>& ranges);

/// The manifest entry for one shard's base slice: row/byte counts and
/// per-integer-column min/max, with the orderdate interval taken from the
/// owned year range (not the slice — an empty shard still owns its years).
ShardInfo DescribeShard(uint32_t shard, int64_t year_lo, int64_t year_hi,
                        const ssb::LineorderTable& base);

}  // namespace cstore::shard
