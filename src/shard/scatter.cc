#include "shard/scatter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "delta/delta_exec.h"
#include "plan/physical.h"
#include "util/thread_pool.h"

namespace cstore::shard {

namespace {

using engine::StoreDesignKind;
using plan::PhysicalPlan;

/// Whether the manifest proves `phys` cannot match any row of this shard.
/// The orderdate test uses the interval the shard *owns* — valid under live
/// writes, because inserts are routed by orderdate year. The per-column
/// base bounds are consulted only when the snapshot has no unmerged
/// inserts: tombstones only shrink the true range (conservative), but an
/// insert could widen it.
bool ManifestPrunes(const PhysicalPlan& phys, const ShardedStore::ShardPin& pin) {
  const plan::FactColumnBounds od = plan::FactBoundsFor(phys, "orderdate");
  if (od.hi < pin.info.orderdate_lo || od.lo > pin.info.orderdate_hi) {
    return true;
  }
  if (pin.snap.delta_rows != 0) return false;
  for (const ShardInfo::ColumnBounds& b : pin.info.column_bounds) {
    const plan::FactColumnBounds q = plan::FactBoundsFor(phys, b.column);
    if (std::max(q.lo, b.lo) > std::min(q.hi, b.hi)) return true;
  }
  return false;
}

/// Adds one shard's billing into the coordinator's sinks, so the query's
/// top-line QueryStats cover all shards (the per-shard split lives in
/// shard_bills).
void Charge(const core::QueryStats& s, core::ExecContext* ctx) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  ctx->io.pages_read.fetch_add(s.pages_read, kRelaxed);
  ctx->io.pages_written.fetch_add(s.pages_written, kRelaxed);
  ctx->telemetry.pages_skipped.fetch_add(s.pages_skipped, kRelaxed);
  ctx->telemetry.pages_all_match.fetch_add(s.pages_all_match, kRelaxed);
  ctx->telemetry.pages_scanned.fetch_add(s.pages_scanned, kRelaxed);
  ctx->telemetry.values_scanned.fetch_add(s.values_scanned, kRelaxed);
  ctx->telemetry.pages_gathered.fetch_add(s.pages_gathered, kRelaxed);
  ctx->telemetry.values_gathered.fetch_add(s.values_gathered, kRelaxed);
  ctx->rows_aggregated.fetch_add(s.rows_aggregated, kRelaxed);
  ctx->groups_emitted.fetch_add(s.groups_emitted, kRelaxed);
  ctx->delta_rows_scanned.fetch_add(s.delta_rows_scanned, kRelaxed);
}

class ShardedDesign : public engine::Design {
 public:
  ShardedDesign(ShardedStore* store, StoreDesignKind kind)
      : store_(store), kind_(kind) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // One mutex acquisition pins every shard at the same epoch: the query
    // sees one consistent cut of the logical table however many shards it
    // fans out to.
    ShardedStore::Pinned pin = store_->Pin();
    CSTORE_CHECK(!pin.shards.empty());
    ctx.snapshot_epoch = pin.epoch;

    // Lower once, against shard 0's version: the physical plan carries
    // names only, and every shard's catalog exposes the same vocabulary.
    CSTORE_ASSIGN_OR_RETURN(PhysicalPlan phys,
                            LowerOnVersion(*pin.shards[0].version, kind_, p));

    if (phys.shape == PhysicalPlan::Shape::kSingleTable) {
      // Dimensions are read-only and replicated identically: shard 0
      // answers alone, no overlay, no fan-out.
      Result<core::QueryResult> r =
          ExecuteBaseOnVersion(*pin.shards[0].version, kind_, phys, ctx);
      CSTORE_RETURN_IF_ERROR(r.status());
      core::QueryResult result = std::move(r).ValueOrDie();
      plan::FinalizeResult(phys, &result);
      return result;
    }

    // Prune whole shards against the manifest before any I/O.
    std::vector<size_t> survivors;
    std::vector<char> pruned(pin.shards.size(), 0);
    for (size_t s = 0; s < pin.shards.size(); ++s) {
      if (ManifestPrunes(phys, pin.shards[s])) {
        pruned[s] = 1;
      } else {
        survivors.push_back(s);
      }
    }
    if (survivors.empty()) {
      // The aggregate shape still owes an answer (a scalar query answers
      // even over zero rows). Shard 0 computes it: its zone maps skip the
      // unsatisfiable scan almost as cheaply.
      pruned[0] = 0;
      survivors.push_back(0);
    }

    // Scatter: each surviving shard gets its own context (per-shard
    // billing) and a share of the query's thread budget.
    const unsigned budget = ctx.config.ResolvedThreads();
    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(survivors.size(), budget));
    const unsigned per_shard = std::max(1u, budget / std::max(1u, workers));
    std::vector<std::unique_ptr<core::ExecContext>> shard_ctx;
    std::vector<core::QueryResult> partial(survivors.size());
    for (size_t i = 0; i < survivors.size(); ++i) {
      auto c = std::make_unique<core::ExecContext>(ctx.config);
      c->config.num_threads = survivors.size() == 1 ? budget : per_shard;
      c->snapshot_epoch = pin.epoch;
      shard_ctx.push_back(std::move(c));
    }
    const Status scatter_status = util::ParallelForStatus(
        survivors.size(), workers, [&](uint64_t i) -> Status {
          const ShardedStore::ShardPin& shard = pin.shards[survivors[i]];
          core::ExecContext& sctx = *shard_ctx[i];
          sctx.fact_tombstones = shard.snap.tombstones.get();
          Result<core::QueryResult> base =
              ExecuteBaseOnVersion(*shard.version, kind_, phys, sctx);
          sctx.fact_tombstones = nullptr;
          CSTORE_RETURN_IF_ERROR(base.status());
          core::QueryResult r = std::move(base).ValueOrDie();
          if (shard.snap.delta_rows != 0) {
            core::QueryResult delta_partial =
                delta::ExecuteDelta(shard.version->data, *shard.version->writes,
                                    shard.snap, phys.query, &sctx);
            r = delta::MergeResults(std::move(r), std::move(delta_partial),
                                    phys.query);
          }
          partial[i] = std::move(r);
          return Status::OK();
        });
    CSTORE_RETURN_IF_ERROR(scatter_status);

    // Bills: every shard appears, pruned ones with zero stats — the
    // pruning-proof tests audit exactly that. Shard totals also roll up
    // into the coordinator's own sinks.
    ctx.shard_bills.clear();
    ctx.shard_bills.reserve(pin.shards.size());
    {
      size_t next_survivor = 0;
      for (size_t s = 0; s < pin.shards.size(); ++s) {
        core::ShardBill bill;
        bill.shard = static_cast<uint32_t>(s);
        bill.pruned = pruned[s] != 0;
        if (!bill.pruned) {
          bill.stats = shard_ctx[next_survivor]->Stats();
          Charge(bill.stats, &ctx);
          ++next_survivor;
        }
        ctx.shard_bills.push_back(std::move(bill));
      }
      CSTORE_CHECK(next_survivor == survivors.size());
    }

    // Gather: fold partials in shard order. MergeResults is the same
    // slot-wise combine the delta overlay uses — sums add, min/max combine
    // under the hidden-count guard, grouped rows merge and re-sort under
    // the executor sort's total order — so the fold is deterministic
    // whatever order the shards finished in.
    core::QueryResult result = std::move(partial[0]);
    for (size_t i = 1; i < partial.size(); ++i) {
      result = delta::MergeResults(std::move(result), std::move(partial[i]),
                                   phys.query);
    }
    plan::FinalizeResult(phys, &result);
    return result;
  }

 private:
  ShardedStore* const store_;
  const StoreDesignKind kind_;
};

}  // namespace

std::unique_ptr<engine::Design> MakeShardedDesign(ShardedStore* store,
                                                  StoreDesignKind kind) {
  CSTORE_CHECK(store != nullptr);
  return std::make_unique<ShardedDesign>(store, kind);
}

void RegisterShardedDesigns(engine::Engine* engine, ShardedStore* store) {
  CSTORE_CHECK(engine != nullptr && store != nullptr);
  const engine::StoreOptions& opt = store->options().store;
  if (opt.build_column) {
    engine->Register("CS",
                     MakeShardedDesign(store, StoreDesignKind::kColumnStore));
  }
  if (opt.build_rows) {
    engine->Register("T",
                     MakeShardedDesign(store, StoreDesignKind::kTraditional));
    engine->Register(
        "T(B)", MakeShardedDesign(store, StoreDesignKind::kTraditionalBitmap));
    engine->Register(
        "MV", MakeShardedDesign(store, StoreDesignKind::kMaterializedViews));
    engine->Register(
        "VP",
        MakeShardedDesign(store, StoreDesignKind::kVerticalPartitioning));
    engine->Register("AI",
                     MakeShardedDesign(store, StoreDesignKind::kIndexOnly));
  }
  if (opt.build_denormalized) {
    engine->Register("PJ",
                     MakeShardedDesign(store, StoreDesignKind::kDenormalized));
  }
}

}  // namespace cstore::shard
