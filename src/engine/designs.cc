#include "engine/designs.h"

#include <utility>

#include "core/star_executor.h"
#include "core/table_executor.h"
#include "delta/delta_exec.h"
#include "engine/planner.h"
#include "ssb/column_db.h"

namespace cstore::engine {

namespace {

using plan::PhysicalPlan;

/// The single-table executors keep dimension-attribute references as
/// (table, column) pairs whose table IS the scanned table, so the name map
/// is the identity on the column name.
std::string IdentityColumnName(const std::string& dim,
                               const std::string& column) {
  (void)dim;
  return column;
}

const col::ColumnTable* DimTableOf(const core::StarSchema& schema,
                                   const std::string& name) {
  for (const core::StarSchema::Dim& d : schema.dims) {
    if (d.name == name) return d.table;
  }
  return nullptr;
}

bool IsSsbDimension(const std::string& name) {
  return name == "date" || name == "customer" || name == "supplier" ||
         name == "part";
}

/// A star plan on the pre-joined table needs every dimension attribute it
/// references to have been widened in.
Status CheckWidened(const col::ColumnTable& table,
                    const core::StarQuery& query) {
  for (const core::DimPredicate& pred : query.dim_predicates) {
    if (!table.HasColumn(ssb::DenormalizedColumnName(pred.dim, pred.column))) {
      return Status::NotSupported("denormalized table has no column for " +
                                  pred.dim + "." + pred.column);
    }
  }
  for (const core::GroupByColumn& g : query.group_by) {
    if (!table.HasColumn(ssb::DenormalizedColumnName(g.dim, g.column))) {
      return Status::NotSupported("denormalized table has no column for " +
                                  g.dim + "." + g.column);
    }
  }
  return Status::OK();
}

/// Applies the physical plan's output mapping and final ordering to an
/// executor's result. A no-op for identity-output plans, so the classic
/// single-slot queries pass through bit-identically.
Result<core::QueryResult> Finalize(const PhysicalPlan& phys,
                                   Result<core::QueryResult> r) {
  CSTORE_RETURN_IF_ERROR(r.status());
  core::QueryResult result = std::move(r).ValueOrDie();
  plan::FinalizeResult(phys, &result);
  return result;
}

class ColumnStoreDesign : public Design {
 public:
  explicit ColumnStoreDesign(core::StarSchema schema)
      : schema_(std::move(schema)), catalog_(CatalogFor(schema_)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(PhysicalPlan phys,
                            PlanToPhysicalForSchema(p, &catalog_, schema_));
    if (phys.shape == PhysicalPlan::Shape::kSingleTable) {
      const col::ColumnTable* dim = DimTableOf(schema_, phys.table);
      CSTORE_CHECK(dim != nullptr);  // ForSchema validated the name
      return Finalize(phys, core::ExecuteTableQuery(*dim, phys.query,
                                                    IdentityColumnName, &ctx));
    }
    return Finalize(phys, core::ExecuteStarQuery(schema_, phys.query, &ctx));
  }

 private:
  const core::StarSchema schema_;
  const plan::Catalog catalog_;
};

class RowStoreDesign : public Design {
 public:
  RowStoreDesign(const ssb::RowDatabase* db, ssb::RowDesign design)
      : db_(db), design_(design) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // The row database has no column-store catalog to validate against;
    // lowering is structural, and the row executor rejects unknown names.
    CSTORE_ASSIGN_OR_RETURN(PhysicalPlan phys, PlanToPhysical(p, nullptr));
    if (phys.shape == PhysicalPlan::Shape::kSingleTable) {
      if (!IsSsbDimension(phys.table)) {
        return Status::InvalidArgument("plan scans unknown table '" +
                                       phys.table + "'");
      }
      // Dimension tables have one physical form under every row design.
      return Finalize(
          phys, ssb::ExecuteRowTableQuery(*db_, phys.query, phys.table, &ctx));
    }
    return Finalize(phys, ssb::ExecuteRowQuery(*db_, phys.query, design_, &ctx));
  }

 private:
  const ssb::RowDatabase* db_;
  const ssb::RowDesign design_;
};

class DenormalizedDesign : public Design {
 public:
  explicit DenormalizedDesign(const ssb::DenormalizedDatabase* db) : db_(db) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(PhysicalPlan phys, PlanToPhysical(p, nullptr));
    if (phys.shape == PhysicalPlan::Shape::kSingleTable) {
      if (!IsSsbDimension(phys.table)) {
        return Status::InvalidArgument("plan scans unknown table '" +
                                       phys.table + "'");
      }
      // The widened fact table repeats each dimension row once per fact
      // row, so dimension-only plans run on the side-car dimension.
      return Finalize(phys,
                      core::ExecuteTableQuery(db_->dim(phys.table), phys.query,
                                              IdentityColumnName, &ctx));
    }
    // Plans keep the star vocabulary; the name map rewrites dimension
    // attributes onto the widened fact columns at execution time.
    CSTORE_RETURN_IF_ERROR(CheckWidened(db_->table(), phys.query));
    return Finalize(phys,
                    core::ExecuteTableQuery(db_->table(), phys.query,
                                            ssb::DenormalizedColumnName, &ctx));
  }

 private:
  const ssb::DenormalizedDatabase* db_;
};

ssb::RowDesign RowDesignOf(StoreDesignKind kind) {
  switch (kind) {
    case StoreDesignKind::kTraditional:
      return ssb::RowDesign::kTraditional;
    case StoreDesignKind::kTraditionalBitmap:
      return ssb::RowDesign::kTraditionalBitmap;
    case StoreDesignKind::kMaterializedViews:
      return ssb::RowDesign::kMaterializedViews;
    case StoreDesignKind::kVerticalPartitioning:
      return ssb::RowDesign::kVerticalPartitioning;
    default:
      CSTORE_CHECK(kind == StoreDesignKind::kIndexOnly);
      return ssb::RowDesign::kIndexOnly;
  }
}

class StoreDesign : public Design {
 public:
  StoreDesign(Store* store, StoreDesignKind kind)
      : store_(store), kind_(kind) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // One mutex acquisition fixes the whole read view: base file-set
    // version, insert high-water mark, tombstone epoch. Everything below
    // races with nothing — the version is frozen, the snapshot immutable.
    Store::Pinned pin = store_->Pin();
    const StoreVersion& v = *pin.version;
    CSTORE_ASSIGN_OR_RETURN(PhysicalPlan phys, LowerOnVersion(v, kind_, p));
    ctx.snapshot_epoch = pin.snap.epoch;
    const bool star = phys.shape == PhysicalPlan::Shape::kStar;
    // Writes touch only the fact table; dimension-only plans read tables
    // no tombstone or delta row can affect, so they skip the overlay and
    // the mask entirely.
    if (star) ctx.fact_tombstones = pin.snap.tombstones.get();
    Result<core::QueryResult> base = ExecuteBaseOnVersion(v, kind_, phys, ctx);
    ctx.fact_tombstones = nullptr;
    CSTORE_RETURN_IF_ERROR(base.status());
    core::QueryResult result = std::move(base).ValueOrDie();
    if (star && pin.snap.delta_rows != 0) {
      core::QueryResult delta_partial =
          delta::ExecuteDelta(v.data, *v.writes, pin.snap, phys.query, &ctx);
      result = delta::MergeResults(std::move(result), std::move(delta_partial),
                                   phys.query);
    }
    // With nothing unmerged the base answer passes through Finalize the
    // same way the read-only designs' answers do (a no-op for identity
    // outputs), so it stays bit-identical to theirs.
    plan::FinalizeResult(phys, &result);
    return result;
  }

 private:
  Store* const store_;
  const StoreDesignKind kind_;
};

class FunctionDesign : public Design {
 public:
  using Fn = std::function<Result<core::QueryResult>(const core::StarQuery&,
                                                     core::ExecContext&)>;
  explicit FunctionDesign(Fn fn) : fn_(std::move(fn)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // Wrapped callables predate the physical-plan layer, so they go through
    // the legacy star funnel: classic single-slot star plans only.
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    // Wrapped callables may predate ExecContext; install the I/O sink here
    // so their device traffic is still billed to the query.
    storage::ScopedIoSink io_sink(&ctx.io);
    return fn_(query, ctx);
  }

 private:
  const Fn fn_;
};

}  // namespace

Result<PhysicalPlan> LowerOnVersion(const StoreVersion& v, StoreDesignKind kind,
                                    const plan::Plan& p) {
  if (kind == StoreDesignKind::kColumnStore) {
    if (v.column_db == nullptr) {
      return Status::NotSupported("store was opened without build_column");
    }
    return PlanToPhysicalForSchema(p, &v.catalog, v.star_schema);
  }
  return PlanToPhysical(p, nullptr);
}

Result<core::QueryResult> ExecuteBaseOnVersion(const StoreVersion& v,
                                               StoreDesignKind kind,
                                               const PhysicalPlan& phys,
                                               core::ExecContext& ctx) {
  const bool single = phys.shape == PhysicalPlan::Shape::kSingleTable;
  const core::StarQuery& query = phys.query;
  switch (kind) {
    case StoreDesignKind::kColumnStore: {
      if (v.column_db == nullptr) {
        return Status::NotSupported("store was opened without build_column");
      }
      if (single) {
        const col::ColumnTable* dim = DimTableOf(v.star_schema, phys.table);
        CSTORE_CHECK(dim != nullptr);  // LowerOnVersion validated the name
        return core::ExecuteTableQuery(*dim, query, IdentityColumnName, &ctx);
      }
      return core::ExecuteStarQuery(v.star_schema, query, &ctx);
    }
    case StoreDesignKind::kDenormalized: {
      if (v.denorm_db == nullptr) {
        return Status::NotSupported(
            "store was opened without build_denormalized");
      }
      if (single) {
        if (!IsSsbDimension(phys.table)) {
          return Status::InvalidArgument("plan scans unknown table '" +
                                         phys.table + "'");
        }
        return core::ExecuteTableQuery(v.denorm_db->dim(phys.table), query,
                                       IdentityColumnName, &ctx);
      }
      CSTORE_RETURN_IF_ERROR(CheckWidened(v.denorm_db->table(), query));
      return core::ExecuteTableQuery(v.denorm_db->table(), query,
                                     ssb::DenormalizedColumnName, &ctx);
    }
    case StoreDesignKind::kTraditional:
    case StoreDesignKind::kTraditionalBitmap:
    case StoreDesignKind::kMaterializedViews:
    case StoreDesignKind::kVerticalPartitioning:
    case StoreDesignKind::kIndexOnly: {
      if (v.row_db == nullptr) {
        return Status::NotSupported("store was opened without build_rows");
      }
      if (single) {
        if (!IsSsbDimension(phys.table)) {
          return Status::InvalidArgument("plan scans unknown table '" +
                                         phys.table + "'");
        }
        return ssb::ExecuteRowTableQuery(*v.row_db, query, phys.table, &ctx);
      }
      return ssb::ExecuteRowQuery(*v.row_db, query, RowDesignOf(kind), &ctx);
    }
  }
  return Status::InvalidArgument("unknown store design kind");
}

std::unique_ptr<Design> MakeColumnStoreDesign(core::StarSchema schema) {
  return std::make_unique<ColumnStoreDesign>(std::move(schema));
}

std::unique_ptr<Design> MakeRowStoreDesign(const ssb::RowDatabase* db,
                                           ssb::RowDesign design) {
  CSTORE_CHECK(db != nullptr);
  return std::make_unique<RowStoreDesign>(db, design);
}

std::unique_ptr<Design> MakeDenormalizedDesign(
    const ssb::DenormalizedDatabase* db) {
  CSTORE_CHECK(db != nullptr);
  return std::make_unique<DenormalizedDesign>(db);
}

std::unique_ptr<Design> MakeStoreDesign(Store* store, StoreDesignKind kind) {
  CSTORE_CHECK(store != nullptr);
  return std::make_unique<StoreDesign>(store, kind);
}

void RegisterStoreDesigns(Engine* engine, Store* store) {
  CSTORE_CHECK(engine != nullptr && store != nullptr);
  const StoreOptions& opt = store->options();
  if (opt.build_column) {
    engine->Register("CS", MakeStoreDesign(store, StoreDesignKind::kColumnStore));
  }
  if (opt.build_rows) {
    engine->Register("T", MakeStoreDesign(store, StoreDesignKind::kTraditional));
    engine->Register("T(B)",
                     MakeStoreDesign(store, StoreDesignKind::kTraditionalBitmap));
    engine->Register(
        "MV", MakeStoreDesign(store, StoreDesignKind::kMaterializedViews));
    engine->Register(
        "VP", MakeStoreDesign(store, StoreDesignKind::kVerticalPartitioning));
    engine->Register("AI", MakeStoreDesign(store, StoreDesignKind::kIndexOnly));
  }
  if (opt.build_denormalized) {
    engine->Register("PJ",
                     MakeStoreDesign(store, StoreDesignKind::kDenormalized));
  }
}

std::unique_ptr<Design> MakeFunctionDesign(FunctionDesign::Fn fn) {
  CSTORE_CHECK(fn != nullptr);
  return std::make_unique<FunctionDesign>(std::move(fn));
}

}  // namespace cstore::engine
