#include "engine/designs.h"

#include <utility>

#include "core/star_executor.h"
#include "core/table_executor.h"

namespace cstore::engine {

namespace {

class ColumnStoreDesign : public Design {
 public:
  explicit ColumnStoreDesign(core::StarSchema schema)
      : schema_(std::move(schema)) {}

  Result<core::QueryResult> Execute(const core::StarQuery& query,
                                    core::ExecContext& ctx) const override {
    return core::ExecuteStarQuery(schema_, query, &ctx);
  }

 private:
  const core::StarSchema schema_;
};

class RowStoreDesign : public Design {
 public:
  RowStoreDesign(const ssb::RowDatabase* db, ssb::RowDesign design)
      : db_(db), design_(design) {}

  Result<core::QueryResult> Execute(const core::StarQuery& query,
                                    core::ExecContext& ctx) const override {
    return ssb::ExecuteRowQuery(*db_, query, design_, &ctx);
  }

 private:
  const ssb::RowDatabase* db_;
  const ssb::RowDesign design_;
};

class DenormalizedDesign : public Design {
 public:
  explicit DenormalizedDesign(const col::ColumnTable* table) : table_(table) {}

  Result<core::QueryResult> Execute(const core::StarQuery& query,
                                    core::ExecContext& ctx) const override {
    return core::ExecuteTableQuery(*table_, ssb::ToDenormalizedQuery(query),
                                   &ctx);
  }

 private:
  const col::ColumnTable* table_;
};

class FunctionDesign : public Design {
 public:
  using Fn = std::function<Result<core::QueryResult>(const core::StarQuery&,
                                                     core::ExecContext&)>;
  explicit FunctionDesign(Fn fn) : fn_(std::move(fn)) {}

  Result<core::QueryResult> Execute(const core::StarQuery& query,
                                    core::ExecContext& ctx) const override {
    // Wrapped callables may predate ExecContext; install the I/O sink here
    // so their device traffic is still billed to the query.
    storage::ScopedIoSink io_sink(&ctx.io);
    return fn_(query, ctx);
  }

 private:
  const Fn fn_;
};

}  // namespace

std::unique_ptr<Design> MakeColumnStoreDesign(core::StarSchema schema) {
  return std::make_unique<ColumnStoreDesign>(std::move(schema));
}

std::unique_ptr<Design> MakeRowStoreDesign(const ssb::RowDatabase* db,
                                           ssb::RowDesign design) {
  CSTORE_CHECK(db != nullptr);
  return std::make_unique<RowStoreDesign>(db, design);
}

std::unique_ptr<Design> MakeDenormalizedDesign(const col::ColumnTable* table) {
  CSTORE_CHECK(table != nullptr);
  return std::make_unique<DenormalizedDesign>(table);
}

std::unique_ptr<Design> MakeFunctionDesign(FunctionDesign::Fn fn) {
  CSTORE_CHECK(fn != nullptr);
  return std::make_unique<FunctionDesign>(std::move(fn));
}

}  // namespace cstore::engine
