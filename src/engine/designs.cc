#include "engine/designs.h"

#include <utility>

#include "core/star_executor.h"
#include "core/table_executor.h"
#include "engine/planner.h"
#include "ssb/column_db.h"

namespace cstore::engine {

namespace {

class ColumnStoreDesign : public Design {
 public:
  explicit ColumnStoreDesign(core::StarSchema schema)
      : schema_(std::move(schema)), catalog_(CatalogFor(schema_)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query,
                            PlanToStarForSchema(p, &catalog_, schema_));
    return core::ExecuteStarQuery(schema_, query, &ctx);
  }

 private:
  const core::StarSchema schema_;
  const plan::Catalog catalog_;
};

class RowStoreDesign : public Design {
 public:
  RowStoreDesign(const ssb::RowDatabase* db, ssb::RowDesign design)
      : db_(db), design_(design) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // The row database has no column-store catalog to validate against;
    // lowering is structural, and the row executor rejects unknown names.
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    return ssb::ExecuteRowQuery(*db_, query, design_, &ctx);
  }

 private:
  const ssb::RowDatabase* db_;
  const ssb::RowDesign design_;
};

class DenormalizedDesign : public Design {
 public:
  explicit DenormalizedDesign(const col::ColumnTable* table) : table_(table) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // Plans keep the star vocabulary; the name map rewrites dimension
    // attributes onto the widened fact columns at execution time.
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    for (const core::DimPredicate& pred : query.dim_predicates) {
      if (!table_->HasColumn(
              ssb::DenormalizedColumnName(pred.dim, pred.column))) {
        return Status::NotSupported("denormalized table has no column for " +
                                    pred.dim + "." + pred.column);
      }
    }
    for (const core::GroupByColumn& g : query.group_by) {
      if (!table_->HasColumn(ssb::DenormalizedColumnName(g.dim, g.column))) {
        return Status::NotSupported("denormalized table has no column for " +
                                    g.dim + "." + g.column);
      }
    }
    return core::ExecuteTableQuery(*table_, query,
                                   ssb::DenormalizedColumnName, &ctx);
  }

 private:
  const col::ColumnTable* table_;
};

class FunctionDesign : public Design {
 public:
  using Fn = std::function<Result<core::QueryResult>(const core::StarQuery&,
                                                     core::ExecContext&)>;
  explicit FunctionDesign(Fn fn) : fn_(std::move(fn)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    // Wrapped callables may predate ExecContext; install the I/O sink here
    // so their device traffic is still billed to the query.
    storage::ScopedIoSink io_sink(&ctx.io);
    return fn_(query, ctx);
  }

 private:
  const Fn fn_;
};

}  // namespace

std::unique_ptr<Design> MakeColumnStoreDesign(core::StarSchema schema) {
  return std::make_unique<ColumnStoreDesign>(std::move(schema));
}

std::unique_ptr<Design> MakeRowStoreDesign(const ssb::RowDatabase* db,
                                           ssb::RowDesign design) {
  CSTORE_CHECK(db != nullptr);
  return std::make_unique<RowStoreDesign>(db, design);
}

std::unique_ptr<Design> MakeDenormalizedDesign(const col::ColumnTable* table) {
  CSTORE_CHECK(table != nullptr);
  return std::make_unique<DenormalizedDesign>(table);
}

std::unique_ptr<Design> MakeFunctionDesign(FunctionDesign::Fn fn) {
  CSTORE_CHECK(fn != nullptr);
  return std::make_unique<FunctionDesign>(std::move(fn));
}

}  // namespace cstore::engine
