#include "engine/designs.h"

#include <utility>

#include "core/star_executor.h"
#include "core/table_executor.h"
#include "delta/delta_exec.h"
#include "engine/planner.h"
#include "ssb/column_db.h"

namespace cstore::engine {

namespace {

class ColumnStoreDesign : public Design {
 public:
  explicit ColumnStoreDesign(core::StarSchema schema)
      : schema_(std::move(schema)), catalog_(CatalogFor(schema_)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query,
                            PlanToStarForSchema(p, &catalog_, schema_));
    return core::ExecuteStarQuery(schema_, query, &ctx);
  }

 private:
  const core::StarSchema schema_;
  const plan::Catalog catalog_;
};

class RowStoreDesign : public Design {
 public:
  RowStoreDesign(const ssb::RowDatabase* db, ssb::RowDesign design)
      : db_(db), design_(design) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // The row database has no column-store catalog to validate against;
    // lowering is structural, and the row executor rejects unknown names.
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    return ssb::ExecuteRowQuery(*db_, query, design_, &ctx);
  }

 private:
  const ssb::RowDatabase* db_;
  const ssb::RowDesign design_;
};

class DenormalizedDesign : public Design {
 public:
  explicit DenormalizedDesign(const col::ColumnTable* table) : table_(table) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // Plans keep the star vocabulary; the name map rewrites dimension
    // attributes onto the widened fact columns at execution time.
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    for (const core::DimPredicate& pred : query.dim_predicates) {
      if (!table_->HasColumn(
              ssb::DenormalizedColumnName(pred.dim, pred.column))) {
        return Status::NotSupported("denormalized table has no column for " +
                                    pred.dim + "." + pred.column);
      }
    }
    for (const core::GroupByColumn& g : query.group_by) {
      if (!table_->HasColumn(ssb::DenormalizedColumnName(g.dim, g.column))) {
        return Status::NotSupported("denormalized table has no column for " +
                                    g.dim + "." + g.column);
      }
    }
    return core::ExecuteTableQuery(*table_, query,
                                   ssb::DenormalizedColumnName, &ctx);
  }

 private:
  const col::ColumnTable* table_;
};

class StoreDesign : public Design {
 public:
  StoreDesign(Store* store, StoreDesignKind kind)
      : store_(store), kind_(kind) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    // One mutex acquisition fixes the whole read view: base file-set
    // version, insert high-water mark, tombstone epoch. Everything below
    // races with nothing — the version is frozen, the snapshot immutable.
    Store::Pinned pin = store_->Pin();
    const StoreVersion& v = *pin.version;
    ctx.snapshot_epoch = pin.snap.epoch;
    ctx.fact_tombstones = pin.snap.tombstones.get();
    Result<core::QueryResult> base = ExecuteBase(v, p, ctx);
    ctx.fact_tombstones = nullptr;
    CSTORE_RETURN_IF_ERROR(base.status());
    if (pin.snap.delta_rows == 0) {
      // Nothing unmerged: the base answer is the answer (and stays
      // bit-identical to the read-only design's).
      return base;
    }
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    core::QueryResult delta_partial =
        delta::ExecuteDelta(v.data, *v.writes, pin.snap, query, &ctx);
    return delta::MergeResults(std::move(base).ValueOrDie(),
                               std::move(delta_partial), query);
  }

 private:
  Result<core::QueryResult> ExecuteBase(const StoreVersion& v,
                                        const plan::Plan& p,
                                        core::ExecContext& ctx) const {
    switch (kind_) {
      case StoreDesignKind::kColumnStore: {
        if (v.column_db == nullptr) {
          return Status::NotSupported("store was opened without build_column");
        }
        CSTORE_ASSIGN_OR_RETURN(
            core::StarQuery query,
            PlanToStarForSchema(p, &v.catalog, v.star_schema));
        return core::ExecuteStarQuery(v.star_schema, query, &ctx);
      }
      case StoreDesignKind::kDenormalized: {
        if (v.denorm_db == nullptr) {
          return Status::NotSupported(
              "store was opened without build_denormalized");
        }
        CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
        for (const core::DimPredicate& pred : query.dim_predicates) {
          if (!v.denorm_db->table().HasColumn(
                  ssb::DenormalizedColumnName(pred.dim, pred.column))) {
            return Status::NotSupported(
                "denormalized table has no column for " + pred.dim + "." +
                pred.column);
          }
        }
        for (const core::GroupByColumn& g : query.group_by) {
          if (!v.denorm_db->table().HasColumn(
                  ssb::DenormalizedColumnName(g.dim, g.column))) {
            return Status::NotSupported(
                "denormalized table has no column for " + g.dim + "." +
                g.column);
          }
        }
        return core::ExecuteTableQuery(v.denorm_db->table(), query,
                                       ssb::DenormalizedColumnName, &ctx);
      }
      default: {
        if (v.row_db == nullptr) {
          return Status::NotSupported("store was opened without build_rows");
        }
        CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
        return ssb::ExecuteRowQuery(*v.row_db, query, RowDesignOf(kind_),
                                    &ctx);
      }
    }
  }

  static ssb::RowDesign RowDesignOf(StoreDesignKind kind) {
    switch (kind) {
      case StoreDesignKind::kTraditional:
        return ssb::RowDesign::kTraditional;
      case StoreDesignKind::kTraditionalBitmap:
        return ssb::RowDesign::kTraditionalBitmap;
      case StoreDesignKind::kMaterializedViews:
        return ssb::RowDesign::kMaterializedViews;
      case StoreDesignKind::kVerticalPartitioning:
        return ssb::RowDesign::kVerticalPartitioning;
      default:
        CSTORE_CHECK(kind == StoreDesignKind::kIndexOnly);
        return ssb::RowDesign::kIndexOnly;
    }
  }

  Store* const store_;
  const StoreDesignKind kind_;
};

class FunctionDesign : public Design {
 public:
  using Fn = std::function<Result<core::QueryResult>(const core::StarQuery&,
                                                     core::ExecContext&)>;
  explicit FunctionDesign(Fn fn) : fn_(std::move(fn)) {}

  Result<core::QueryResult> Execute(const plan::Plan& p,
                                    core::ExecContext& ctx) const override {
    CSTORE_ASSIGN_OR_RETURN(core::StarQuery query, PlanToStar(p, nullptr));
    // Wrapped callables may predate ExecContext; install the I/O sink here
    // so their device traffic is still billed to the query.
    storage::ScopedIoSink io_sink(&ctx.io);
    return fn_(query, ctx);
  }

 private:
  const Fn fn_;
};

}  // namespace

std::unique_ptr<Design> MakeColumnStoreDesign(core::StarSchema schema) {
  return std::make_unique<ColumnStoreDesign>(std::move(schema));
}

std::unique_ptr<Design> MakeRowStoreDesign(const ssb::RowDatabase* db,
                                           ssb::RowDesign design) {
  CSTORE_CHECK(db != nullptr);
  return std::make_unique<RowStoreDesign>(db, design);
}

std::unique_ptr<Design> MakeDenormalizedDesign(const col::ColumnTable* table) {
  CSTORE_CHECK(table != nullptr);
  return std::make_unique<DenormalizedDesign>(table);
}

std::unique_ptr<Design> MakeStoreDesign(Store* store, StoreDesignKind kind) {
  CSTORE_CHECK(store != nullptr);
  return std::make_unique<StoreDesign>(store, kind);
}

void RegisterStoreDesigns(Engine* engine, Store* store) {
  CSTORE_CHECK(engine != nullptr && store != nullptr);
  const StoreOptions& opt = store->options();
  if (opt.build_column) {
    engine->Register("CS", MakeStoreDesign(store, StoreDesignKind::kColumnStore));
  }
  if (opt.build_rows) {
    engine->Register("T", MakeStoreDesign(store, StoreDesignKind::kTraditional));
    engine->Register("T(B)",
                     MakeStoreDesign(store, StoreDesignKind::kTraditionalBitmap));
    engine->Register(
        "MV", MakeStoreDesign(store, StoreDesignKind::kMaterializedViews));
    engine->Register(
        "VP", MakeStoreDesign(store, StoreDesignKind::kVerticalPartitioning));
    engine->Register("AI", MakeStoreDesign(store, StoreDesignKind::kIndexOnly));
  }
  if (opt.build_denormalized) {
    engine->Register("PJ",
                     MakeStoreDesign(store, StoreDesignKind::kDenormalized));
  }
}

std::unique_ptr<Design> MakeFunctionDesign(FunctionDesign::Fn fn) {
  CSTORE_CHECK(fn != nullptr);
  return std::make_unique<FunctionDesign>(std::move(fn));
}

}  // namespace cstore::engine
