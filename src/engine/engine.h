// engine::Engine / engine::Session: one front door for every physical design.
//
// The paper's experiments compare five physical designs — the column store
// and the four row-store layouts of §4 (traditional, bitmap-biased,
// vertically partitioned, index-only) plus materialized views — each with
// its own executor in the lower layers. A serving system cannot hand
// clients five entry points with five telemetry conventions: this module
// is the single API the harness, the benches, and (eventually) a network
// front end all talk to. Queries arrive as data — logical plans built with
// plan::PlanBuilder — and each design lowers the plan onto its own access
// paths (engine/planner.h); the executors' free functions are private
// implementation details of the design adapters. The design varies; the
// interface does not (Bruno, "Teaching an Old Elephant New Tricks").
//
//   Engine   owns what queries share: the worker pool the morsel layer
//            draws from, the SharedScanManager cooperative scans attach to,
//            and the admission gate bounding in-flight queries
//            (EngineOptions::max_inflight_queries). Designs register behind
//            the common engine::Design interface, keyed by name.
//   Session  is one client's handle (one session per client thread).
//            Run(plan) admits the query through the gate, executes it on
//            the session's design with a fresh core::ExecContext, and
//            returns the QueryResult together with per-query QueryStats —
//            wall time, admission wait, device pages read, zone-map
//            skip/all-match/scan counts, aggregation work — attributed to
//            exactly this query no matter how many clients run
//            concurrently.
//
// Admission ("Processing a Trillion Cells per Mouse Click" serves thousands
// of users this way): with max_inflight_queries = N, at most N queries
// execute at once; later arrivals block in Run() and their wait is reported
// in QueryStats::admission_wait_seconds. Besides bounding memory and pool
// pressure, the gate staggers arrivals into the shared-scan groups —
// attachments trickle in behind the in-flight cursor instead of thundering
// in at page 0.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <string_view>
#include <vector>

#include "core/exec_context.h"
#include "core/shared_scan.h"
#include "core/star_query.h"
#include "engine/store.h"
#include "plan/plan.h"
#include "util/thread_pool.h"

namespace cstore::engine {

/// A physical design registered with the engine: anything that can answer a
/// logical plan under an ExecContext. Implementations are stateless
/// adapters over a loaded database (engine/designs.h has the five standard
/// ones); each lowers the plan onto its own access paths (engine/planner.h)
/// and must be safe to Execute from concurrent sessions.
class Design {
 public:
  virtual ~Design() = default;

  /// Lowers and executes `p`, honoring ctx.config (thread budget,
  /// iteration / join / materialization knobs, shared-scan handle where the
  /// design supports it) and charging telemetry + device I/O to ctx's
  /// sinks. A plan that does not validate against the design's catalog or
  /// does not lower returns a Status, never a wrong answer.
  virtual Result<core::QueryResult> Execute(const plan::Plan& p,
                                            core::ExecContext& ctx) const = 0;
};

struct EngineOptions {
  /// Maximum queries executing at once across all sessions; later arrivals
  /// block at the admission gate. 0 = unlimited.
  size_t max_inflight_queries = 0;
  /// When true, sessions' fact scans attach to the engine's shared
  /// SharedScanManager (cooperative scans across concurrent clients).
  bool shared_scans = false;
  /// When true, sessions whose ExecConfig::num_threads is auto (0) get a
  /// per-query pool share computed at admission — hardware threads divided
  /// by the number of in-flight queries — instead of the full machine. One
  /// fat scatter-gather query then cannot starve short ones: its budget
  /// shrinks while others are in flight. Sessions that pin num_threads
  /// explicitly are never overridden. Results are identical either way
  /// (thread count never changes answers), only scheduling differs.
  bool dynamic_thread_budget = false;
  /// Starting ExecConfig for every session (thread budget per query, the
  /// Figure-7 knobs). Sessions may adjust their own copy via config().
  core::ExecConfig default_config;
};

/// One query's answer plus its bill.
struct QueryOutcome {
  core::QueryResult result;
  core::QueryStats stats;
  /// The write epoch the query's snapshot was pinned at (0 for read-only
  /// designs with no store attached). Writes committed at epoch <= this
  /// are reflected in `result`; later ones are not.
  uint64_t snapshot_epoch = 0;
  /// The worker budget this query executed under (after the dynamic
  /// thread-budget division, when enabled).
  unsigned thread_budget = 0;
  /// Per-shard billing from a scatter-gather design (empty otherwise):
  /// one entry per shard in shard order, pruned shards included with zero
  /// I/O — the receipts the pruning-proof tests audit.
  std::vector<core::ShardBill> shard_bills;
};

class Session;

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  CSTORE_DISALLOW_COPY_AND_ASSIGN(Engine);

  /// Registers `design` under `name` (replacing any previous registration
  /// with that name). Returns the registered design.
  Design* Register(std::string name, std::unique_ptr<Design> design);

  /// Opens a client session bound to the named design (CHECK-fails on an
  /// unknown name). The session starts from options().default_config; it is
  /// not thread-safe — one session per client thread.
  std::unique_ptr<Session> OpenSession(const std::string& design);

  std::vector<std::string> DesignNames() const;
  const EngineOptions& options() const { return options_; }

  /// Attaches the writeable store sessions' Insert/Delete go through (the
  /// engine does not own it; it must outlive the engine). Store-backed
  /// designs (engine/designs.h: MakeStoreDesign) read from the same store,
  /// so queries see writes at their pinned epoch. Accepts any WriteTarget —
  /// a monolithic Store or a shard::ShardedStore routing writes to
  /// partitions. One store per engine; attach at setup time, before
  /// sessions write.
  void AttachStore(WriteTarget* store) { store_ = store; }
  WriteTarget* store() const { return store_; }

  /// The manager sessions' scans attach to when options().shared_scans.
  core::SharedScanManager& shared_scan_manager() { return shared_scans_; }

  /// The worker pool queries' morsel-parallel phases draw from; per-query
  /// parallelism is budgeted by ExecConfig::num_threads, not per pool.
  util::ThreadPool& pool() const { return util::ThreadPool::Global(); }

  /// Engine-lifetime telemetry.
  struct Stats {
    uint64_t queries_run = 0;     ///< queries admitted through the gate
    uint64_t queries_waited = 0;  ///< of those, blocked before admission
    double admission_wait_seconds = 0;  ///< total time spent blocked
  };
  Stats stats() const;

 private:
  friend class Session;

  /// One admission through the gate: the wait it cost and the in-flight
  /// count (this query included) at the moment it was admitted — the
  /// divisor the dynamic thread budget splits the pool by.
  struct Admission {
    double waited = 0;
    size_t inflight = 1;
  };

  /// Blocks until an in-flight slot frees (no-op when unlimited).
  Admission Admit();
  void Release();

  const EngineOptions options_;
  core::SharedScanManager shared_scans_;
  WriteTarget* store_ = nullptr;

  /// Registered designs. Registration happens at setup time; sessions hold
  /// raw Design pointers, so entries must not be replaced while queries run.
  std::map<std::string, std::unique_ptr<Design>> designs_;

  mutable std::mutex mu_;
  mutable std::condition_variable slot_freed_;
  size_t inflight_ = 0;
  Stats stats_;
};

/// A client's handle on the engine: a design binding plus per-session
/// ExecConfig. Run() is the one query entry point for every design.
class Session {
 public:
  CSTORE_DISALLOW_COPY_AND_ASSIGN(Session);

  /// Admits, executes, and bills one query, given as a logical plan
  /// (plan::PlanBuilder). On success the outcome carries the result and
  /// this query's own stats; the session's running totals() are updated as
  /// well.
  Result<QueryOutcome> Run(const plan::Plan& p);

  /// Appends `rows` to `table`'s write store (only the fact table,
  /// "lineorder", is writeable; dimensions return NotSupported). The write
  /// goes through the same admission gate as queries and is billed the
  /// same way: the outcome reports rows affected, unmerged delta bytes,
  /// and the commit epoch, and its stats (rows_written, wall time,
  /// admission wait) fold into totals(). Requires Engine::AttachStore.
  Result<WriteOutcome> Insert(std::string_view table,
                              std::vector<ssb::LineorderRow> rows);

  /// Tombstones every live `table` row matching all of `predicate`
  /// (conjunctive integer ranges over fact columns). Same admission,
  /// billing, and scoping rules as Insert.
  Result<WriteOutcome> Delete(std::string_view table,
                              const std::vector<core::FactPredicate>& predicate);

  /// This session's execution knobs (seeded from the engine's
  /// default_config). Adjust between Run() calls, not during one.
  core::ExecConfig& config() { return config_; }
  const core::ExecConfig& config() const { return config_; }

  const std::string& design_name() const { return design_name_; }

  /// Cumulative stats over every successful Run() on this session.
  const core::QueryStats& totals() const { return totals_; }

 private:
  friend class Engine;
  Session(Engine* engine, std::string design_name, const Design* design)
      : engine_(engine),
        design_name_(std::move(design_name)),
        design_(design),
        config_(engine->options().default_config) {}

  Engine* engine_;
  std::string design_name_;
  const Design* design_;
  core::ExecConfig config_;
  core::QueryStats totals_;
};

}  // namespace cstore::engine
