// engine::Store: the versioned, writeable database behind store-backed
// designs — the epoch registry of the WS/RS split.
//
// A Store owns a chain of immutable *versions*. Each StoreVersion is a
// frozen base (the logical SsbData it was built from, plus whichever
// physical databases the options requested: column store, row store with
// its §4 designs, denormalized table) and one delta::WriteStore that
// accumulates everything written since that base was built.
//
//   Pin()      — one mutex acquisition returns {version, Snapshot}: the
//                base file-set version, the delta high-water mark, and the
//                tombstone epoch. A query holds the shared_ptr for its
//                whole execution, so a concurrent merge swapping versions
//                never pulls files out from under it.
//   Insert /   — bump the write epoch under the store mutex and stamp the
//   Delete       current version's write store. Readers are never blocked:
//                the insert log publishes lock-free, pinned snapshots do
//                epoch arithmetic, and Delete's O(base_rows) predicate scan
//                runs against a pinned version outside the mutex — only the
//                O(matches) tombstone stamping holds it.
//   MergeOnce  — the tuple mover. Snapshots (E, H), builds the merged
//                logical table (delta/merge.h), rebuilds the physical
//                databases from it through the ordinary staged Build
//                (bit-identical to a from-scratch load), then under the
//                mutex migrates writes that committed after (E, H) onto
//                the new base and swaps it in atomically.
//
// Writes are scoped to the fact table: SSB's refresh streams (like
// TPC-H's) insert into and delete from LINEORDER only, and every physical
// design treats dimensions as read-only join sides. Dimension writes
// return NotSupported at the Session API.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/star_query.h"
#include "delta/write_store.h"
#include "plan/validate.h"
#include "ssb/column_db.h"
#include "ssb/data.h"
#include "ssb/row_db.h"

namespace cstore::engine {

struct StoreOptions {
  /// Which physical databases each version materializes (designs backed by
  /// an absent database cannot be registered).
  bool build_column = true;
  bool build_rows = false;
  bool build_denormalized = false;
  col::CompressionMode compression = col::CompressionMode::kFull;
  ssb::RowDbOptions row_options;  ///< used when build_rows
  size_t pool_pages = 8192;
  unsigned load_threads = 0;
  /// When > 0, a background merger thread drains the write store into a
  /// new version whenever unmerged writes (inserts + tombstones) reach
  /// this many rows. 0 = merge only on explicit MergeOnce().
  uint64_t merge_threshold_rows = 0;
};

/// One frozen base: the logical rows it was built from, the physical
/// databases over them, and the write store accumulating changes since.
/// Immutable after construction except for the write store (which is
/// internally safe for one writer + concurrent pinned readers).
struct StoreVersion {
  uint64_t id = 0;
  ssb::SsbData data;
  std::unique_ptr<ssb::ColumnDatabase> column_db;
  std::unique_ptr<ssb::RowDatabase> row_db;
  std::unique_ptr<ssb::DenormalizedDatabase> denorm_db;
  /// Cached lowering inputs for the column-store design.
  core::StarSchema star_schema;
  plan::Catalog catalog;
  std::unique_ptr<delta::WriteStore> writes;
};

/// One write's receipt (engine::Session::Insert / Delete).
struct WriteOutcome {
  uint64_t rows_affected = 0;
  /// Unmerged write-store bytes after this write.
  uint64_t delta_bytes = 0;
  /// The write epoch this operation committed at: snapshots pinned at
  /// epoch >= this see it.
  uint64_t epoch = 0;
  /// Wall/admission billing, symmetric with a query's QueryStats.
  core::QueryStats stats;
};

/// The write half of a store — what engine::Session::Insert/Delete need.
/// Store implements it over one monolithic base; shard::ShardedStore routes
/// each write to the partition owning its orderdate. Engine::AttachStore
/// accepts either, so the Session write API is identical sharded or not.
class WriteTarget {
 public:
  virtual ~WriteTarget() = default;

  virtual Result<WriteOutcome> Insert(std::string_view table,
                                      std::vector<ssb::LineorderRow> rows) = 0;
  virtual Result<WriteOutcome> Delete(
      std::string_view table,
      const std::vector<core::FactPredicate>& predicate) = 0;
};

class Store : public WriteTarget {
 public:
  /// Builds version 1 from `data`. Fails if any requested physical
  /// database fails to build.
  static Result<std::unique_ptr<Store>> Open(ssb::SsbData data,
                                             StoreOptions options);
  ~Store();
  CSTORE_DISALLOW_COPY_AND_ASSIGN(Store);

  /// A pinned read view: the version (kept alive by the shared_ptr) plus
  /// the visibility snapshot, taken atomically.
  struct Pinned {
    std::shared_ptr<const StoreVersion> version;
    delta::Snapshot snap;
  };
  Pinned Pin();

  /// Appends `rows` to the fact table's write store under a fresh epoch.
  /// Only "lineorder" is writeable.
  Result<WriteOutcome> Insert(std::string_view table,
                              std::vector<ssb::LineorderRow> rows) override;

  /// Tombstones every live fact row matching all of `predicate`
  /// (conjunctive integer ranges) under a fresh epoch.
  Result<WriteOutcome> Delete(
      std::string_view table,
      const std::vector<core::FactPredicate>& predicate) override;

  /// Runs one merge cycle: drains writes visible at the current epoch into
  /// a freshly built version and swaps it in. Writes landing during the
  /// rebuild migrate onto the new version's write store. Serialized
  /// against itself; concurrent reads and writes proceed throughout.
  /// No-op (OK) when there is nothing to merge.
  Status MergeOnce();

  uint64_t write_epoch() const;
  uint64_t version_id() const;
  /// Unmerged rows (inserts + tombstones) in the current write store.
  uint64_t unmerged_rows() const;

  struct MergeStats {
    uint64_t merges = 0;
    uint64_t rows_out = 0;        ///< rows written into merged bases
    uint64_t base_dropped = 0;    ///< tombstoned base rows retired
    uint64_t inserts_applied = 0; ///< inserts folded into merged bases
    uint64_t failed_merges = 0;   ///< background merge cycles that errored
  };
  MergeStats merge_stats() const;

  const StoreOptions& options() const { return options_; }

  /// Builds one frozen version from `data`: the physical databases the
  /// options request plus an empty write store. Public so
  /// shard::ShardedStore builds its per-shard versions through the exact
  /// staged Build the monolithic store uses (bit-identical file sets).
  static Result<std::shared_ptr<StoreVersion>> BuildVersion(
      uint64_t id, ssb::SsbData data, const StoreOptions& options);

 private:
  explicit Store(StoreOptions options) : options_(std::move(options)) {}

  void MergerLoop();

  const StoreOptions options_;

  mutable std::mutex mu_;           ///< guards current_, epoch_, stats_
  std::shared_ptr<StoreVersion> current_;
  uint64_t epoch_ = 0;
  MergeStats merge_stats_;

  std::mutex merge_mu_;             ///< serializes MergeOnce
  std::thread merger_;
  std::condition_variable merge_cv_;
  std::mutex merge_cv_mu_;
  bool stop_ = false;
};

}  // namespace cstore::engine
