// The engine's planner: validated lowering of logical plans onto designs.
//
// plan::LowerToStar is purely structural — it will happily lower a plan
// referencing tables no design has loaded. The planner closes that gap:
// CatalogFor derives a plan::Catalog from a design's loaded StarSchema
// (real column names and types, not a hard-coded list), and PlanToStar
// runs plan::Validate against it before lowering, then cross-checks the
// plan's asserted join edges (fact table, fk/key pairs) against the
// schema's. Every engine::Design adapter funnels through PlanToStar, so a
// malformed plan is rejected with a Status at the front door instead of
// CHECK-failing deep inside an executor.
#pragma once

#include "common/result.h"
#include "core/star_query.h"
#include "plan/lower.h"
#include "plan/validate.h"

namespace cstore::engine {

/// Catalog of the tables a StarSchema exposes to plans: the fact table
/// under its ColumnTable name plus each dimension under its schema name.
/// Column names and string/integer types come from the loaded columns.
plan::Catalog CatalogFor(const core::StarSchema& schema);

/// Validates `p` against `catalog` (skipped when null — designs without a
/// loaded column schema validate structurally only) and lowers it to the
/// flat star form the executors consume.
Result<core::StarQuery> PlanToStar(const plan::Plan& p,
                                   const plan::Catalog* catalog);

/// PlanToStar plus schema cross-checks: the plan's fact table and join
/// edges (fact fk = dim key) must match what `schema` declares, so a plan
/// joining "date" on the wrong key is an InvalidArgument, not a wrong
/// answer.
Result<core::StarQuery> PlanToStarForSchema(const plan::Plan& p,
                                            const plan::Catalog* catalog,
                                            const core::StarSchema& schema);

}  // namespace cstore::engine
