// The engine's planner: validated lowering of logical plans onto designs.
//
// plan::LowerToPhysical is purely structural — it will happily lower a
// plan referencing tables no design has loaded. The planner closes that
// gap: CatalogFor derives a plan::Catalog from a design's loaded
// StarSchema (real column names and types, not a hard-coded list), and
// PlanToPhysical runs plan::Validate against it before lowering; the
// ForSchema variant additionally cross-checks the plan's asserted join
// edges (fact table, fk/key pairs) and single-table names against the
// schema's. Every engine::Design adapter funnels through one of these, so
// a malformed plan is rejected with a Status at the front door instead of
// CHECK-failing deep inside an executor. PlanToStar is the legacy
// single-slot star funnel, kept for the adapters that can only execute
// that shape (the Row-MV-in-column-store hybrid).
#pragma once

#include "common/result.h"
#include "core/star_query.h"
#include "plan/lower.h"
#include "plan/physical.h"
#include "plan/validate.h"

namespace cstore::engine {

/// Catalog of the tables a StarSchema exposes to plans: the fact table
/// under its ColumnTable name plus each dimension under its schema name.
/// Column names and string/integer types come from the loaded columns.
plan::Catalog CatalogFor(const core::StarSchema& schema);

/// Validates `p` against `catalog` (skipped when null — designs without a
/// loaded column schema validate structurally only) and lowers it to a
/// physical plan (star or single-table, any slot layout).
Result<plan::PhysicalPlan> PlanToPhysical(const plan::Plan& p,
                                          const plan::Catalog* catalog);

/// PlanToPhysical plus schema cross-checks. Star plans: the fact table and
/// every join edge (fact fk = dim key) must match what `schema` declares,
/// so a plan joining "date" on the wrong key is an InvalidArgument, not a
/// wrong answer. Single-table plans: the scanned table must be one of the
/// schema's dimensions.
Result<plan::PhysicalPlan> PlanToPhysicalForSchema(
    const plan::Plan& p, const plan::Catalog* catalog,
    const core::StarSchema& schema);

/// Legacy star funnel: PlanToPhysical restricted to the classic
/// single-slot star form (see plan::LowerToStar).
Result<core::StarQuery> PlanToStar(const plan::Plan& p,
                                   const plan::Catalog* catalog);

}  // namespace cstore::engine
