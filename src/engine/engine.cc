#include "engine/engine.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace cstore::engine {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() = default;

Design* Engine::Register(std::string name, std::unique_ptr<Design> design) {
  CSTORE_CHECK(design != nullptr);
  Design* raw = design.get();
  designs_[std::move(name)] = std::move(design);
  return raw;
}

std::unique_ptr<Session> Engine::OpenSession(const std::string& design) {
  auto it = designs_.find(design);
  CSTORE_CHECK(it != designs_.end());
  // Session's constructor is private; unique_ptr via bare new.
  return std::unique_ptr<Session>(
      new Session(this, it->first, it->second.get()));
}

std::vector<std::string> Engine::DesignNames() const {
  std::vector<std::string> names;
  names.reserve(designs_.size());
  for (const auto& [name, design] : designs_) names.push_back(name);
  return names;
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Engine::Admission Engine::Admit() {
  const size_t cap = options_.max_inflight_queries;
  std::unique_lock<std::mutex> lock(mu_);
  if (cap == 0 || inflight_ < cap) {
    ++inflight_;
    ++stats_.queries_run;
    return Admission{0, inflight_};
  }
  util::Stopwatch wait;
  slot_freed_.wait(lock, [&] { return inflight_ < cap; });
  const double waited = wait.ElapsedSeconds();
  ++inflight_;
  ++stats_.queries_run;
  ++stats_.queries_waited;
  stats_.admission_wait_seconds += waited;
  return Admission{waited, inflight_};
}

void Engine::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CSTORE_CHECK(inflight_ > 0);
    --inflight_;
  }
  slot_freed_.notify_one();
}

Result<QueryOutcome> Session::Run(const plan::Plan& p) {
  util::Stopwatch wall;
  const Engine::Admission admission = engine_->Admit();

  core::ExecContext ctx(config_);
  if (engine_->options().shared_scans && ctx.config.shared_scans == nullptr) {
    ctx.config.shared_scans = &engine_->shared_scans_;
  }
  if (engine_->options().dynamic_thread_budget && config_.num_threads == 0) {
    // This query's pool share: the machine divided by how many queries are
    // in flight at admission. Sessions that pinned a thread count keep it.
    const unsigned hw = util::ThreadPool::HardwareThreads();
    ctx.config.num_threads = std::max<unsigned>(
        1, hw / static_cast<unsigned>(std::max<size_t>(1, admission.inflight)));
  }
  Result<core::QueryResult> result = design_->Execute(p, ctx);
  engine_->Release();
  CSTORE_RETURN_IF_ERROR(result.status());

  QueryOutcome outcome;
  outcome.result = std::move(result).ValueOrDie();
  outcome.stats = ctx.Stats();
  outcome.stats.admission_wait_seconds = admission.waited;
  outcome.stats.seconds = wall.ElapsedSeconds();
  outcome.snapshot_epoch = ctx.snapshot_epoch;
  outcome.thread_budget = ctx.config.ResolvedThreads();
  outcome.shard_bills = std::move(ctx.shard_bills);
  totals_ += outcome.stats;
  return outcome;
}

Result<WriteOutcome> Session::Insert(std::string_view table,
                                     std::vector<ssb::LineorderRow> rows) {
  if (engine_->store() == nullptr) {
    return Status::NotSupported("engine has no writeable store attached");
  }
  util::Stopwatch wall;
  const double waited = engine_->Admit().waited;
  Result<WriteOutcome> result =
      engine_->store()->Insert(table, std::move(rows));
  engine_->Release();
  CSTORE_RETURN_IF_ERROR(result.status());

  WriteOutcome out = std::move(result).ValueOrDie();
  out.stats.rows_written = out.rows_affected;
  out.stats.admission_wait_seconds = waited;
  out.stats.seconds = wall.ElapsedSeconds();
  totals_ += out.stats;
  return out;
}

Result<WriteOutcome> Session::Delete(
    std::string_view table,
    const std::vector<core::FactPredicate>& predicate) {
  if (engine_->store() == nullptr) {
    return Status::NotSupported("engine has no writeable store attached");
  }
  util::Stopwatch wall;
  const double waited = engine_->Admit().waited;
  Result<WriteOutcome> result = engine_->store()->Delete(table, predicate);
  engine_->Release();
  CSTORE_RETURN_IF_ERROR(result.status());

  WriteOutcome out = std::move(result).ValueOrDie();
  out.stats.rows_deleted = out.rows_affected;
  out.stats.admission_wait_seconds = waited;
  out.stats.seconds = wall.ElapsedSeconds();
  totals_ += out.stats;
  return out;
}

}  // namespace cstore::engine
