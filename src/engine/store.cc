#include "engine/store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "delta/merge.h"
#include "engine/planner.h"

namespace cstore::engine {

namespace {

/// Integer lineorder columns a delete predicate may range over.
bool IsFactIntColumn(const std::string& name) {
  static const char* const kNames[] = {
      "orderkey",   "linenumber",    "custkey",    "partkey", "suppkey",
      "orderdate",  "quantity",      "extendedprice", "ordtotalprice",
      "discount",   "revenue",       "supplycost", "tax",     "commitdate"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace

Result<std::shared_ptr<StoreVersion>> Store::BuildVersion(
    uint64_t id, ssb::SsbData data, const StoreOptions& options) {
  auto v = std::make_shared<StoreVersion>();
  v->id = id;
  v->data = std::move(data);
  if (options.build_column) {
    CSTORE_ASSIGN_OR_RETURN(
        v->column_db,
        ssb::ColumnDatabase::Build(v->data, options.compression,
                                   options.pool_pages, options.load_threads));
    v->star_schema = v->column_db->Schema();
    v->catalog = CatalogFor(v->star_schema);
  }
  if (options.build_rows) {
    CSTORE_ASSIGN_OR_RETURN(v->row_db,
                            ssb::RowDatabase::Build(v->data,
                                                    options.row_options));
  }
  if (options.build_denormalized) {
    CSTORE_ASSIGN_OR_RETURN(
        v->denorm_db,
        ssb::DenormalizedDatabase::Build(v->data, options.compression,
                                         options.pool_pages,
                                         options.load_threads));
  }
  v->writes = std::make_unique<delta::WriteStore>(v->data.lineorder.size());
  return v;
}

Result<std::unique_ptr<Store>> Store::Open(ssb::SsbData data,
                                           StoreOptions options) {
  std::unique_ptr<Store> store(new Store(std::move(options)));
  CSTORE_ASSIGN_OR_RETURN(store->current_,
                          BuildVersion(1, std::move(data), store->options_));
  if (store->options_.merge_threshold_rows > 0) {
    store->merger_ = std::thread([s = store.get()] { s->MergerLoop(); });
  }
  return store;
}

Store::~Store() {
  if (merger_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(merge_cv_mu_);
      stop_ = true;
    }
    merge_cv_.notify_all();
    merger_.join();
  }
}

Store::Pinned Store::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  Pinned p;
  p.version = current_;
  p.snap.epoch = epoch_;
  p.snap.delta_rows = current_->writes->size();
  p.snap.tombstones = current_->writes->TombstonesAt(epoch_);
  return p;
}

Result<WriteOutcome> Store::Insert(std::string_view table,
                                   std::vector<ssb::LineorderRow> rows) {
  if (table != "lineorder") {
    return Status::NotSupported(
        "only the fact table (lineorder) is writeable; dimensions are "
        "read-only join sides");
  }
  // Validate FKs against the (immutable) dimensions before taking the
  // lock: a row whose key no dimension row matches would silently vanish
  // from joins — reject it at the front door instead. Pin the version
  // first: a concurrent merge swap would otherwise release it (and the
  // dims we are reading) mid-validation.
  {
    std::shared_ptr<const StoreVersion> v;
    {
      std::lock_guard<std::mutex> lock(mu_);
      v = current_;
    }
    const ssb::SsbData& dims = v->data;  // dims identical across versions
    for (const ssb::LineorderRow& r : rows) {
      if (r.custkey < 1 ||
          r.custkey > static_cast<int64_t>(dims.customer.size()) ||
          r.suppkey < 1 ||
          r.suppkey > static_cast<int64_t>(dims.supplier.size()) ||
          r.partkey < 1 ||
          r.partkey > static_cast<int64_t>(dims.part.size())) {
        return Status::InvalidArgument("insert row has an unknown dimension key");
      }
      if (!std::binary_search(dims.date.datekey.begin(),
                              dims.date.datekey.end(), r.orderdate)) {
        return Status::InvalidArgument("insert row has an unknown orderdate");
      }
    }
  }
  WriteOutcome out;
  out.rows_affected = rows.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.epoch = ++epoch_;
    for (ssb::LineorderRow& r : rows) {
      current_->writes->Append(std::move(r), out.epoch);
    }
    out.delta_bytes = current_->writes->delta_bytes();
  }
  if (options_.merge_threshold_rows > 0) merge_cv_.notify_one();
  return out;
}

Result<WriteOutcome> Store::Delete(
    std::string_view table, const std::vector<core::FactPredicate>& predicate) {
  if (table != "lineorder") {
    return Status::NotSupported(
        "only the fact table (lineorder) is writeable; dimensions are "
        "read-only join sides");
  }
  for (const core::FactPredicate& p : predicate) {
    if (!IsFactIntColumn(p.column)) {
      return Status::InvalidArgument("delete predicate on unknown column " +
                                     p.column);
    }
  }
  WriteOutcome out;
  // The O(base_rows) predicate scan runs against a pinned version without
  // holding mu_, so concurrent readers' Pin() never waits on it; the
  // critical section is only the O(matches) tombstone stamping (which
  // re-checks liveness against deletes that raced ahead of us).
  for (;;) {
    std::shared_ptr<StoreVersion> v;
    {
      std::lock_guard<std::mutex> lock(mu_);
      v = current_;
    }
    std::vector<uint32_t> base_hits;
    std::vector<uint64_t> delta_hits;
    const uint64_t scanned =
        v->writes->FindMatches(v->data, predicate, &base_hits, &delta_hits);
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ != v) continue;  // a merge swapped bases mid-scan: the
                                  // positions are stale, re-evaluate
    out.epoch = ++epoch_;
    out.rows_affected = current_->writes->ApplyDelete(
        base_hits, delta_hits, scanned, predicate, out.epoch);
    out.delta_bytes = current_->writes->delta_bytes();
    break;
  }
  if (options_.merge_threshold_rows > 0) merge_cv_.notify_one();
  return out;
}

Status Store::MergeOnce() {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);

  std::shared_ptr<StoreVersion> old;
  uint64_t epoch = 0;
  uint64_t hwm = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old = current_;
    epoch = epoch_;
    hwm = old->writes->size();
    if (hwm == 0 && old->writes->base_delete_log().empty()) {
      return Status::OK();  // nothing to merge
    }
  }

  // Expensive part, no locks held: plan the merged logical table and
  // rebuild the physical databases through the ordinary staged Build.
  // Writers keep appending (beyond hwm / epoch) meanwhile.
  delta::MergePlan plan = delta::BuildMergePlan(old->data, *old->writes,
                                                epoch, hwm);
  CSTORE_ASSIGN_OR_RETURN(
      std::shared_ptr<StoreVersion> next,
      BuildVersion(old->id + 1, std::move(plan.data), options_));

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Migrate writes that committed after the merge snapshot onto the new
    // base. Tombstones first, in epoch order — TombstonesAt relies on the
    // delete log being epoch-sorted.
    std::vector<std::pair<uint32_t, uint64_t>> moved;
    for (const auto& [pos, e] : old->writes->base_delete_log()) {
      if (e <= epoch) continue;  // folded into the merge (row dropped)
      const uint32_t np = plan.base_to_new[pos];
      CSTORE_CHECK(np != delta::MergePlan::kDropped);
      moved.emplace_back(np, e);
    }
    for (uint64_t i = 0; i < hwm; ++i) {
      const uint64_t d = old->writes->delta_deleted_at(i);
      if (d == 0 || d <= epoch) continue;
      // This insert became a base row of the new version; its later delete
      // becomes a base tombstone there.
      const uint32_t np = plan.delta_to_new[i];
      CSTORE_CHECK(np != delta::MergePlan::kDropped);
      moved.emplace_back(np, d);
    }
    std::sort(moved.begin(), moved.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    for (const auto& [np, e] : moved) next->writes->TombstoneBase(np, e);
    // Inserts past the high-water mark re-enter the new write store in
    // commit order, stamps carried verbatim.
    const uint64_t tail_end = old->writes->size();
    for (uint64_t i = hwm; i < tail_end; ++i) {
      const uint64_t j =
          next->writes->Append(old->writes->row(i), old->writes->inserted_at(i));
      const uint64_t d = old->writes->delta_deleted_at(i);
      if (d != 0) next->writes->TombstoneDelta(j, d);
    }
    current_ = std::move(next);
    merge_stats_.merges++;
    merge_stats_.rows_out += current_->data.lineorder.size();
    merge_stats_.base_dropped += plan.base_dropped;
    merge_stats_.inserts_applied += plan.inserts_applied;
  }
  return Status::OK();
}

uint64_t Store::write_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint64_t Store::version_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id;
}

uint64_t Store::unmerged_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->writes->size() + current_->writes->base_delete_log().size();
}

Store::MergeStats Store::merge_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_stats_;
}

void Store::MergerLoop() {
  std::chrono::milliseconds wait(20);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(merge_cv_mu_);
      merge_cv_.wait_for(lock, wait);
      if (stop_) return;
    }
    if (unmerged_rows() < options_.merge_threshold_rows) continue;
    const Status s = MergeOnce();
    if (s.ok()) {
      wait = std::chrono::milliseconds(20);
      continue;
    }
    // A failed merge leaves the current version and its write store
    // untouched: writes keep accumulating and a later cycle retries, so
    // back off instead of crashing the process from a background thread.
    std::fprintf(stderr, "cstore: background merge failed (will retry): %s\n",
                 s.ToString().c_str());
    {
      std::lock_guard<std::mutex> lock(mu_);
      merge_stats_.failed_merges++;
    }
    wait = std::min(wait * 2, std::chrono::milliseconds(2000));
  }
}

}  // namespace cstore::engine
