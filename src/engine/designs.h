// The standard engine::Design adapters: every physical design the paper
// measures, registered behind the one Session::Run front door.
//
// Each factory wraps an already-loaded database. Adapters hold pointers
// only — the database must outlive the engine — and are stateless, so
// concurrent sessions may share one design instance. Every adapter lowers
// the incoming plan::Plan through engine/planner.h before dispatching to
// its executor; the executors' free functions (core::ExecuteStarQuery,
// core::ExecuteTableQuery, ssb::ExecuteRowQuery) are private to this
// translation unit's adapters — clients go through engine::Session::Run.
#pragma once

#include <functional>
#include <memory>

#include "engine/engine.h"
#include "engine/store.h"
#include "plan/physical.h"
#include "ssb/column_db.h"
#include "ssb/row_exec.h"

namespace cstore::engine {

/// The column store: late/early-materialized star plans over a
/// ssb::ColumnDatabase's schema (all Figure-7 knobs honored, shared scans
/// supported).
std::unique_ptr<Design> MakeColumnStoreDesign(core::StarSchema schema);

/// One of the §4 row-store designs over a ssb::RowDatabase (the database
/// must have been built with the options the design needs). Honors the
/// context's thread budget; the iteration/join knobs don't apply.
std::unique_ptr<Design> MakeRowStoreDesign(const ssb::RowDatabase* db,
                                           ssb::RowDesign design);

/// The pre-joined ("PJ") single-table design of §6.3.3: star queries are
/// rewritten onto the denormalized fact table and run join-free;
/// dimension-only plans run on the database's dimension side-car.
std::unique_ptr<Design> MakeDenormalizedDesign(
    const ssb::DenormalizedDatabase* db);

/// The physical design a store-backed adapter executes the base half of a
/// query through. Same vocabulary as the read-only factories above: the
/// column store, the four §4 row layouts plus materialized views, and the
/// pre-joined table.
enum class StoreDesignKind {
  kColumnStore,
  kTraditional,
  kTraditionalBitmap,
  kMaterializedViews,
  kVerticalPartitioning,
  kIndexOnly,
  kDenormalized,
};

/// A writeable, snapshot-stable design over `store`: every Execute pins
/// {base version, delta high-water mark, tombstone epoch} in one shot, runs
/// the kind's executor over the pinned base with the snapshot's tombstone
/// bitmap masking deleted positions, overlays the visible unmerged inserts
/// (delta/delta_exec.h), and merges the two partials. The store must
/// outlive the design and have built the physical database the kind needs
/// (StoreOptions::build_*) — a missing database is NotSupported at query
/// time, never a crash.
std::unique_ptr<Design> MakeStoreDesign(Store* store, StoreDesignKind kind);

/// Registers every store design the store's options can back, under the
/// benches' usual names: "CS" (build_column), "T", "T(B)", "MV", "VP",
/// "AI" (build_rows), and "PJ" (build_denormalized).
void RegisterStoreDesigns(Engine* engine, Store* store);

/// Lowers `p` for `kind` against one pinned version: the column-store kind
/// validates against the version's cached catalog and schema, every other
/// kind lowers structurally. PhysicalPlan carries names only — no table
/// pointers — so the scatter-gather coordinator (src/shard) lowers once and
/// executes the same physical plan against every shard's version.
Result<plan::PhysicalPlan> LowerOnVersion(const StoreVersion& v,
                                          StoreDesignKind kind,
                                          const plan::Plan& p);

/// Executes the base (frozen file-set) half of `phys` against one pinned
/// version through `kind`'s executor, honoring ctx's knobs and tombstone
/// mask and charging its sinks. The delta overlay and FinalizeResult are
/// the caller's job — StoreDesign applies them per store, the shard
/// coordinator after folding shard partials.
Result<core::QueryResult> ExecuteBaseOnVersion(const StoreVersion& v,
                                               StoreDesignKind kind,
                                               const plan::PhysicalPlan& phys,
                                               core::ExecContext& ctx);

/// Escape hatch for bespoke executors (e.g. the Row-MV-in-column-store
/// hybrid): wraps any callable. The engine still installs the context's
/// I/O sink around the call, so device pages are attributed per query even
/// when the callable predates ExecContext.
std::unique_ptr<Design> MakeFunctionDesign(
    std::function<Result<core::QueryResult>(const core::StarQuery&,
                                            core::ExecContext&)>
        fn);

}  // namespace cstore::engine
