#include "engine/planner.h"

#include <utility>

namespace cstore::engine {

namespace {

std::vector<plan::Catalog::Column> ColumnsOf(const col::ColumnTable& table) {
  std::vector<plan::Catalog::Column> cols;
  cols.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const col::ColumnInfo& info = table.column(i).info();
    cols.push_back({info.name, info.logical_type == DataType::kChar});
  }
  return cols;
}

}  // namespace

plan::Catalog CatalogFor(const core::StarSchema& schema) {
  plan::Catalog catalog;
  CSTORE_CHECK(schema.fact != nullptr);
  catalog.AddTable(schema.fact->name(), ColumnsOf(*schema.fact));
  for (const core::StarSchema::Dim& dim : schema.dims) {
    CSTORE_CHECK(dim.table != nullptr);
    catalog.AddTable(dim.name, ColumnsOf(*dim.table));
  }
  return catalog;
}

Result<plan::PhysicalPlan> PlanToPhysical(const plan::Plan& p,
                                          const plan::Catalog* catalog) {
  if (catalog != nullptr) {
    CSTORE_RETURN_IF_ERROR(plan::Validate(p, *catalog));
  }
  return plan::LowerToPhysical(p);
}

Result<plan::PhysicalPlan> PlanToPhysicalForSchema(
    const plan::Plan& p, const plan::Catalog* catalog,
    const core::StarSchema& schema) {
  CSTORE_ASSIGN_OR_RETURN(plan::PhysicalPlan phys, PlanToPhysical(p, catalog));

  if (phys.shape == plan::PhysicalPlan::Shape::kSingleTable) {
    for (const core::StarSchema::Dim& d : schema.dims) {
      if (d.name == phys.table) return phys;
    }
    return Status::InvalidArgument("plan scans table '" + phys.table +
                                   "', which is not a dimension of the "
                                   "design's schema");
  }

  CSTORE_CHECK(schema.fact != nullptr);
  if (phys.fact_table != schema.fact->name()) {
    return Status::InvalidArgument("plan scans fact table '" +
                                   phys.fact_table + "' but the design's is '" +
                                   schema.fact->name() + "'");
  }
  for (const plan::JoinEdge& edge : phys.joins) {
    const core::StarSchema::Dim* dim = nullptr;
    for (const core::StarSchema::Dim& d : schema.dims) {
      if (d.name == edge.dim) dim = &d;
    }
    if (dim == nullptr) {
      return Status::InvalidArgument("plan joins unknown dimension '" +
                                     edge.dim + "'");
    }
    if (edge.fact_fk != dim->fact_fk_column || edge.dim_key != dim->key_column) {
      return Status::InvalidArgument(
          "plan joins " + phys.fact_table + "." + edge.fact_fk + " = " +
          edge.dim + "." + edge.dim_key + " but the schema declares " +
          phys.fact_table + "." + dim->fact_fk_column + " = " + edge.dim +
          "." + dim->key_column);
    }
  }
  return phys;
}

Result<core::StarQuery> PlanToStar(const plan::Plan& p,
                                   const plan::Catalog* catalog) {
  if (catalog != nullptr) {
    CSTORE_RETURN_IF_ERROR(plan::Validate(p, *catalog));
  }
  Result<plan::LoweredStar> lowered = plan::LowerToStar(p);
  CSTORE_RETURN_IF_ERROR(lowered.status());
  return std::move(lowered).ValueOrDie().query;
}

}  // namespace cstore::engine
