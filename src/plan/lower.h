// Lowering: logical plan → the flat star form the executors consume.
//
// Every physical design in this engine executes the same lowered shape — a
// core::StarQuery (dimension predicates, fact predicates, group-by
// columns, one aggregate, a sort spec). LowerToStar pattern-matches a
// validated plan against that shape:
//
//   [Sort] → Aggregate → [GroupBy] → Join* → [Filter] → Scan(fact)
//                                      └ [Filter] → Scan(dim)
//
// and rejects anything else with NotSupported — the plan IR can express
// graphs the executors cannot run (yet), and lowering is where that line
// is drawn, not deep inside an executor. Lowering is structural: it needs
// no catalog, so the ssb layer can lower plans (e.g. to build
// materialized views from them) without depending on the engine.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/star_query.h"
#include "plan/plan.h"

namespace cstore::plan {

/// A lowered star query plus the schema facts the plan asserted — the
/// engine's planner cross-checks these against the design's StarSchema
/// (fact table name, fk/key pairs) before executing.
struct LoweredStar {
  core::StarQuery query;
  std::string fact_table;
  struct JoinEdge {
    std::string dim;       ///< dimension table name
    std::string fact_fk;   ///< fact column joined on
    std::string dim_key;   ///< dimension key column joined on
  };
  /// In the builder's call order (probe order of the canned queries).
  std::vector<JoinEdge> joins;
};

/// Lowers `plan` to the star form, or NotSupported/InvalidArgument when
/// the plan is not star-shaped. Does not validate column references — run
/// plan::Validate first when the plan comes from outside.
Result<LoweredStar> LowerToStar(const Plan& plan);

/// Convenience: just the query. CHECK-fails on non-star plans, so reserve
/// it for plans the caller built itself (canned queries, MV definitions).
core::StarQuery LowerToStarQueryOrDie(const Plan& plan);

}  // namespace cstore::plan
