// Star-only lowering, kept as a thin compatibility wrapper.
//
// The general path is plan::LowerToPhysical (physical.h), which lowers
// both star and single-table shapes with multi-aggregate slot/output
// mapping. A few callers still need the strict classic contract — a star
// plan with exactly one aggregate slot and identity outputs, i.e. the
// shape the materialized-view builder and the RS(MV) hybrid execute
// directly as a core::StarQuery. LowerToStar enforces that contract on
// top of LowerToPhysical and rejects everything wider with NotSupported.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/star_query.h"
#include "plan/physical.h"
#include "plan/plan.h"

namespace cstore::plan {

/// A lowered star query plus the schema facts the plan asserted — the
/// engine's planner cross-checks these against the design's StarSchema
/// (fact table name, fk/key pairs) before executing.
struct LoweredStar {
  core::StarQuery query;
  std::string fact_table;
  /// Shared with the physical layer; kept as a member alias so existing
  /// `LoweredStar::JoinEdge` spellings keep compiling.
  using JoinEdge = plan::JoinEdge;
  /// In the builder's call order (probe order of the canned queries).
  std::vector<JoinEdge> joins;
};

/// Lowers `plan` to the classic star form: star shape, one aggregate slot,
/// identity outputs. NotSupported otherwise — including plans that *do*
/// lower to a PhysicalPlan but need the slot/output machinery (multi-
/// aggregate, AVG, dimension-only).
Result<LoweredStar> LowerToStar(const Plan& plan);

/// Convenience: just the query. CHECK-fails on non-star plans, so reserve
/// it for plans the caller built itself (canned queries, MV definitions).
core::StarQuery LowerToStarQueryOrDie(const Plan& plan);

}  // namespace cstore::plan
