#include "plan/physical.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace cstore::plan {

namespace {

/// Every lowering rejection names the offending node kind and quotes the
/// subtree rooted there, so a failing fuzzer plan or a user's hand-built
/// DAG is diagnosable from the error message alone.
Status Reject(const Plan& plan, int id, const std::string& why) {
  return Status::NotSupported(
      "plan does not lower to a physical plan: " + why + " at " +
      std::string(NodeKindName(plan.node(id).kind)) + " node " +
      std::to_string(id) + ":\n" + plan.SubtreeToString(id));
}

core::DimPredicate LowerDimPredicate(const Predicate& p) {
  core::DimPredicate d;
  d.dim = p.column.table;
  d.column = p.column.column;
  d.op = p.op;
  d.is_string = p.is_string;
  d.strs = p.strs;
  d.ints = p.ints;
  return d;
}

Status LowerFactPredicate(const Plan& plan, int filter_id, const Predicate& p,
                          core::FactPredicate* out) {
  if (p.is_string) {
    return Reject(plan, filter_id,
                  "string predicate on fact column " + p.column.ToString());
  }
  out->column = p.column.column;
  switch (p.op) {
    case core::PredOp::kEq:
      out->lo = p.ints[0];
      out->hi = p.ints[0];
      return Status::OK();
    case core::PredOp::kRange:
      out->lo = p.ints[0];
      out->hi = p.ints[1];
      return Status::OK();
    case core::PredOp::kIn:
      return Reject(plan, filter_id,
                    "IN predicate on fact column " + p.column.ToString());
  }
  return Reject(plan, filter_id, "unknown predicate op");
}

/// Accumulates the slot list with exact-expression dedup: two outputs over
/// the same (kind, a, b) share one accumulator (e.g. SUM(x) and AVG(x)
/// share the sum slot; any number of COUNT outputs share one count slot).
struct SlotBuilder {
  std::vector<core::Aggregate> slots;
  std::vector<core::OutputSpec> outputs;

  int FindOrAdd(core::AggKind kind, const std::string& a,
                const std::string& b) {
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].kind == kind && slots[i].column_a == a &&
          slots[i].column_b == b) {
        return static_cast<int>(i);
      }
    }
    core::Aggregate slot;
    slot.kind = kind;
    slot.column_a = a;
    slot.column_b = b;
    slots.push_back(std::move(slot));
    return static_cast<int>(slots.size()) - 1;
  }

  bool HasCountSlot() const {
    for (const core::Aggregate& s : slots) {
      if (s.kind == core::AggKind::kCountStar) return true;
    }
    return false;
  }

  /// Lowers one logical aggregate expression to slots + one output. The
  /// logical-only kinds are rewritten here: COUNT(col) counts rows (SSB
  /// columns are never NULL), AVG becomes a sum/count ratio.
  void Add(const AggExpr& agg) {
    core::OutputSpec spec;
    switch (agg.kind) {
      case core::AggKind::kSumColumn:
      case core::AggKind::kMin:
      case core::AggKind::kMax:
        spec.slot = FindOrAdd(agg.kind, agg.a.column, "");
        break;
      case core::AggKind::kSumProduct:
      case core::AggKind::kSumDiff:
        spec.slot = FindOrAdd(agg.kind, agg.a.column, agg.b.column);
        break;
      case core::AggKind::kCountStar:
      case core::AggKind::kCountColumn:
        spec.slot = FindOrAdd(core::AggKind::kCountStar, "", "");
        break;
      case core::AggKind::kAvg:
        spec.kind = core::OutputSpec::Kind::kRatio;
        spec.slot = FindOrAdd(core::AggKind::kSumColumn, agg.a.column, "");
        spec.count_slot = FindOrAdd(core::AggKind::kCountStar, "", "");
        break;
    }
    outputs.push_back(spec);
  }
};

std::string PredToString(const core::DimPredicate& p) {
  std::string out = p.dim + "." + p.column;
  auto operand = [&](size_t i) {
    return p.is_string ? "'" + p.strs[i] + "'" : std::to_string(p.ints[i]);
  };
  const size_t n = p.is_string ? p.strs.size() : p.ints.size();
  switch (p.op) {
    case core::PredOp::kEq:
      out += " = " + operand(0);
      break;
    case core::PredOp::kRange:
      out += " between " + operand(0) + " and " + operand(1);
      break;
    case core::PredOp::kIn:
      out += " in (";
      for (size_t i = 0; i < n; ++i) {
        if (i != 0) out += ", ";
        out += operand(i);
      }
      out += ")";
      break;
  }
  return out;
}

std::string PredToString(const core::FactPredicate& p) {
  return p.column + " in [" + std::to_string(p.lo) + ", " +
         std::to_string(p.hi) + "]";
}

std::string SortToString(const core::SortSpec& sort) {
  std::string out = "[";
  for (size_t i = 0; i < sort.size(); ++i) {
    if (i != 0) out += ", ";
    out += sort[i].column == core::SortKey::kMeasure
               ? "measure"
               : std::to_string(sort[i].column);
    out += sort[i].ascending ? " asc" : " desc";
  }
  return out + "]";
}

}  // namespace

std::string PhysicalOp::ToString() const {
  switch (kind) {
    case Kind::kScan:
      return "Scan(" + table + ")";
    case Kind::kFilter: {
      std::string out = "Filter(";
      size_t i = 0;
      for (const core::FactPredicate& p : fact_predicates) {
        if (i++ != 0) out += " AND ";
        out += PredToString(p);
      }
      for (const core::DimPredicate& p : table_predicates) {
        if (i++ != 0) out += " AND ";
        out += PredToString(p);
      }
      return out + ")";
    }
    case Kind::kJoin: {
      std::string out =
          "Join(" + edge.dim + " ON " + edge.fact_fk + " = " + edge.dim_key;
      for (const core::DimPredicate& p : build_predicates) {
        out += "; " + PredToString(p);
      }
      return out + ")";
    }
    case Kind::kGroupAgg: {
      std::string out = "GroupAgg(keys=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i != 0) out += ", ";
        out += group_by[i].dim + "." + group_by[i].column;
      }
      out += "], slots=[";
      for (size_t i = 0; i < slots.size(); ++i) {
        if (i != 0) out += ", ";
        out += slots[i].ToString();
      }
      out += "], outputs=[";
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (i != 0) out += ", ";
        const core::OutputSpec& spec = outputs[i];
        switch (spec.kind) {
          case core::OutputSpec::Kind::kSlot:
            out += "#" + std::to_string(spec.slot);
            break;
          case core::OutputSpec::Kind::kRatio:
            out += "#" + std::to_string(spec.slot) + "/#" +
                   std::to_string(spec.count_slot);
            break;
        }
      }
      return out + "])";
    }
    case Kind::kSort:
      return "Sort" + SortToString(sort);
  }
  return "?";
}

std::string PhysicalPlan::ToString() const {
  std::string out = "PhysicalPlan ";
  out += shape == Shape::kStar ? "star" : "single-table";
  out += " " + query.id + "\n";
  for (const PhysicalOp& op : ops) {
    out += "  " + op.ToString() + "\n";
  }
  return out;
}

Result<PhysicalPlan> LowerToPhysical(const Plan& plan) {
  if (plan.root() < 0) {
    return Status::NotSupported(
        "plan does not lower to a physical plan: empty plan");
  }
  PhysicalPlan out;
  out.query.id = plan.id();

  // Root-down match: [Sort] → Aggregate → [GroupBy] → Join* → [Filter] →
  // Scan. Node payloads are captured on the way down and lowered once the
  // scan table — and with it the shape — is known.
  int cur = plan.root();
  const Node* n = &plan.node(cur);

  bool has_sort = false;
  core::SortSpec plan_sort;
  if (n->kind == Node::Kind::kSort) {
    has_sort = true;
    plan_sort = n->sort;
    cur = n->inputs[0];
    n = &plan.node(cur);
  }

  if (n->kind != Node::Kind::kAggregate) {
    return Reject(plan, cur, "root chain is missing the Aggregate node");
  }
  const int agg_id = cur;
  const std::vector<AggExpr>& aggs = n->aggs;
  if (aggs.empty()) {
    return Reject(plan, cur, "Aggregate node has no expressions");
  }
  cur = n->inputs[0];
  n = &plan.node(cur);

  if (n->kind == Node::Kind::kGroupBy) {
    for (const ColumnRef& key : n->group_keys) {
      out.query.group_by.push_back({key.table, key.column});
    }
    cur = n->inputs[0];
    n = &plan.node(cur);
  }

  // The join chain, root-down — i.e. reverse of the builder's call order.
  // Per-edge predicates ride along so the JoinOps carry their build sides.
  std::vector<std::vector<core::DimPredicate>> join_preds;
  while (n->kind == Node::Kind::kJoin) {
    const int join_id = cur;
    int dim_id = n->inputs[1];
    const Node* dim = &plan.node(dim_id);
    std::vector<core::DimPredicate> dim_preds;
    if (dim->kind == Node::Kind::kFilter) {
      for (const Predicate& p : dim->predicates) {
        dim_preds.push_back(LowerDimPredicate(p));
      }
      dim_id = dim->inputs[0];
      dim = &plan.node(dim_id);
    }
    if (dim->kind != Node::Kind::kScan) {
      return Reject(plan, join_id,
                    "join build side is not Scan or Filter(Scan)");
    }
    for (const core::DimPredicate& p : dim_preds) {
      if (p.dim != dim->table) {
        return Reject(plan, join_id,
                      "dimension filter references " + p.dim + "." + p.column +
                          " on the " + dim->table + " build side");
      }
    }
    out.joins.push_back(
        {dim->table, n->left_key.column, n->right_key.column});
    join_preds.push_back(std::move(dim_preds));
    cur = n->inputs[0];
    n = &plan.node(cur);
  }
  // Restore builder call order (probe order).
  std::reverse(out.joins.begin(), out.joins.end());
  std::reverse(join_preds.begin(), join_preds.end());

  int filter_id = -1;
  const Node* filter = nullptr;
  if (n->kind == Node::Kind::kFilter) {
    filter_id = cur;
    filter = n;
    cur = n->inputs[0];
    n = &plan.node(cur);
  }

  if (n->kind != Node::Kind::kScan) {
    return Reject(plan, cur, "probe chain does not bottom out at a base Scan");
  }
  const int scan_id = cur;
  const std::string& base = n->table;

  // Shape: any probe through joins is a star plan (the base is its fact
  // table — the engine's planner cross-checks the name against the
  // design's schema), and a join-free scan of the fact table stays star
  // too, keeping its access paths, tombstones and delta overlay. Only a
  // join-free scan of some other table lowers to the single-table shape.
  const bool is_star = base == kFactTableName || !out.joins.empty();
  out.shape =
      is_star ? PhysicalPlan::Shape::kStar : PhysicalPlan::Shape::kSingleTable;
  if (is_star) {
    out.fact_table = base;
  } else {
    out.table = base;
  }

  // Base filter, now that the shape is known. Star plans take integer
  // ranges only (the fact scan's compiled predicate form); single-table
  // scans accept the full dimension predicate vocabulary.
  if (filter != nullptr) {
    for (const Predicate& p : filter->predicates) {
      if (p.column.table != base) {
        return Reject(plan, filter_id,
                      "filter predicate references " + p.column.ToString() +
                          " but the scan reads '" + base + "'");
      }
      if (is_star) {
        core::FactPredicate fp;
        Status s = LowerFactPredicate(plan, filter_id, p, &fp);
        if (!s.ok()) return s;
        out.query.fact_predicates.push_back(std::move(fp));
      } else {
        out.query.dim_predicates.push_back(LowerDimPredicate(p));
      }
    }
  }
  // Dimension predicates in builder call order, as the executors expect.
  for (const std::vector<core::DimPredicate>& preds : join_preds) {
    out.query.dim_predicates.insert(out.query.dim_predicates.end(),
                                    preds.begin(), preds.end());
  }

  // Cross-checks that need the base identified: measures must come off the
  // scanned base, and group-by keys must be attributes the pipeline
  // produces (joined dimensions for star plans, the base itself for
  // single-table plans).
  for (const AggExpr& agg : aggs) {
    bool bad = false;
    switch (agg.kind) {
      case core::AggKind::kSumColumn:
      case core::AggKind::kMin:
      case core::AggKind::kMax:
      case core::AggKind::kAvg:
        bad = agg.a.table != base;
        break;
      case core::AggKind::kSumProduct:
      case core::AggKind::kSumDiff:
        bad = agg.a.table != base || agg.b.table != base;
        break;
      case core::AggKind::kCountStar:
      case core::AggKind::kCountColumn:
        // Counts read no operand once lowered (COUNT(col) counts rows —
        // SSB columns are never NULL), so any in-scope reference is fine.
        break;
    }
    if (bad) {
      return Reject(plan, agg_id,
                    "aggregate " + agg.ToString() + " must read '" + base +
                        "' columns");
    }
  }
  for (const core::GroupByColumn& g : out.query.group_by) {
    if (is_star) {
      if (g.dim == base) {
        return Reject(plan, agg_id, "group-by on fact column " + g.column);
      }
      bool joined = false;
      for (const JoinEdge& j : out.joins) {
        if (j.dim == g.dim) joined = true;
      }
      if (!joined) {
        return Reject(plan, agg_id,
                      "group-by references unjoined table " + g.dim);
      }
    } else if (g.dim != base) {
      return Reject(plan, agg_id,
                    "group-by references " + g.dim + "." + g.column +
                        " but the plan scans only '" + base + "'");
    }
  }
  if (is_star) {
    for (const core::DimPredicate& p : out.query.dim_predicates) {
      if (p.dim == base) {
        return Reject(plan, scan_id,
                      "fact predicate routed to a dimension filter");
      }
    }
  }

  // Aggregate slots + outputs. Ungrouped plans whose slots include a min or
  // max get a hidden count slot: merging two ungrouped partial results
  // (delta overlay, per-worker morsels) must distinguish "no rows on this
  // side" from a real extremum, and the count is how. Grouped plans don't
  // need it — an empty side simply contributes no groups.
  SlotBuilder sb;
  for (const AggExpr& agg : aggs) sb.Add(agg);
  if (out.query.group_by.empty() && !sb.HasCountSlot()) {
    bool has_minmax = false;
    for (const core::Aggregate& s : sb.slots) {
      if (s.kind == core::AggKind::kMin || s.kind == core::AggKind::kMax) {
        has_minmax = true;
      }
    }
    if (has_minmax) sb.FindOrAdd(core::AggKind::kCountStar, "", "");
  }
  out.query.aggs = sb.slots;
  out.outputs = sb.outputs;
  out.identity_outputs = core::IdentityOutputs(out.outputs, sb.slots.size());

  // Result ordering. With identity outputs the executor's rows are final,
  // so it gets the plan's sort and Finalize is a no-op — single-aggregate
  // star plans run exactly the legacy path, bit for bit. Otherwise the
  // executor produces the canonical order (group columns ascending, a
  // total order) and the plan's ordering is applied after ApplyOutputs.
  out.final_sort = plan_sort;
  if (out.identity_outputs) {
    out.query.sort = plan_sort;
  }

  // The operator pipeline, scan-first.
  {
    PhysicalOp scan;
    scan.kind = PhysicalOp::Kind::kScan;
    scan.table = base;
    out.ops.push_back(std::move(scan));
  }
  if (filter != nullptr) {
    PhysicalOp f;
    f.kind = PhysicalOp::Kind::kFilter;
    if (is_star) {
      f.fact_predicates = out.query.fact_predicates;
    } else {
      f.table_predicates = out.query.dim_predicates;
    }
    out.ops.push_back(std::move(f));
  }
  for (size_t i = 0; i < out.joins.size(); ++i) {
    PhysicalOp j;
    j.kind = PhysicalOp::Kind::kJoin;
    j.edge = out.joins[i];
    j.build_predicates = join_preds[i];
    out.ops.push_back(std::move(j));
  }
  {
    PhysicalOp g;
    g.kind = PhysicalOp::Kind::kGroupAgg;
    g.group_by = out.query.group_by;
    g.slots = out.query.aggs;
    g.outputs = out.outputs;
    out.ops.push_back(std::move(g));
  }
  if (has_sort) {
    PhysicalOp s;
    s.kind = PhysicalOp::Kind::kSort;
    s.sort = plan_sort;
    out.ops.push_back(std::move(s));
  }

  return out;
}

void FinalizeResult(const PhysicalPlan& plan, core::QueryResult* result) {
  if (plan.identity_outputs) return;
  core::ApplyOutputs(plan.outputs, result);
  result->Sort(plan.final_sort);
}

FactColumnBounds FactBoundsFor(const PhysicalPlan& plan,
                               std::string_view column) {
  FactColumnBounds b{std::numeric_limits<int64_t>::min(),
                     std::numeric_limits<int64_t>::max()};
  for (const core::FactPredicate& p : plan.query.fact_predicates) {
    if (p.column != column) continue;
    b.lo = std::max(b.lo, p.lo);
    b.hi = std::min(b.hi, p.hi);
  }
  return b;
}

}  // namespace cstore::plan
