#include "plan/validate.h"

#include <cstddef>

namespace cstore::plan {

const Catalog::Table* Catalog::FindTable(const std::string& name) const {
  for (const Table& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const Catalog::Column* Catalog::FindColumn(const std::string& table,
                                           const std::string& column) const {
  const Table* t = FindTable(table);
  if (t == nullptr) return nullptr;
  for (const Column& c : t->columns) {
    if (c.name == column) return &c;
  }
  return nullptr;
}

Catalog& Catalog::AddTable(std::string name, std::vector<Column> columns) {
  tables.push_back({std::move(name), std::move(columns)});
  return *this;
}

namespace {

/// What a subtree exposes to the nodes above it.
struct Scope {
  /// Names of the tables scanned in the subtree (column references above
  /// resolve against these).
  std::vector<std::string> tables;
  /// Number of group-by key columns, or -1 below the GroupBy node.
  int num_group_keys = -1;
  bool has_aggregate = false;
};

class Validator {
 public:
  Validator(const Plan& plan, const Catalog& catalog)
      : plan_(plan), catalog_(catalog), state_(plan.nodes().size(), 0) {}

  Status Run() {
    const int n = static_cast<int>(plan_.nodes().size());
    if (plan_.root() < 0 || plan_.root() >= n) {
      return Status::InvalidArgument("plan has no root node");
    }
    Scope scope;
    Status s = Walk(plan_.root(), &scope);
    if (!s.ok()) return s;
    if (!scope.has_aggregate) {
      return Status::InvalidArgument("plan has no Aggregate node");
    }
    return Status::OK();
  }

 private:
  Status ResolveInt(const ColumnRef& ref, const Scope& scope,
                    const char* what) {
    const Catalog::Column* c = Resolve(ref, scope);
    if (c == nullptr) {
      return Status::InvalidArgument(std::string(what) + " references " +
                                     ref.ToString() +
                                     ", which is not in scope");
    }
    if (c->is_string) {
      return Status::InvalidArgument(std::string(what) + " on " +
                                     ref.ToString() +
                                     " requires an integer column");
    }
    return Status::OK();
  }

  /// Resolves `ref` against the tables visible in `scope`, or null.
  const Catalog::Column* Resolve(const ColumnRef& ref, const Scope& scope) {
    for (const std::string& t : scope.tables) {
      if (t == ref.table) return catalog_.FindColumn(ref.table, ref.column);
    }
    return nullptr;
  }

  Status Walk(int id, Scope* out) {
    if (id < 0 || id >= static_cast<int>(plan_.nodes().size())) {
      return Status::InvalidArgument("node input id out of range");
    }
    if (state_[static_cast<size_t>(id)] == 1) {
      return Status::InvalidArgument("plan graph contains a cycle");
    }
    state_[static_cast<size_t>(id)] = 1;
    Status s = WalkNode(id, out);
    state_[static_cast<size_t>(id)] = 2;
    return s;
  }

  Status WalkNode(int id, Scope* out) {
    const Node& n = plan_.node(id);
    const std::string where =
        std::string(NodeKindName(n.kind)) + " node " + std::to_string(id);

    auto expect_inputs = [&](size_t count) {
      return n.inputs.size() == count
                 ? Status::OK()
                 : Status::InvalidArgument(
                       where + " expects " + std::to_string(count) +
                       " input(s), has " + std::to_string(n.inputs.size()));
    };

    switch (n.kind) {
      case Node::Kind::kScan: {
        Status s = expect_inputs(0);
        if (!s.ok()) return s;
        if (catalog_.FindTable(n.table) == nullptr) {
          return Status::InvalidArgument(where + ": unknown table '" +
                                         n.table + "'");
        }
        out->tables = {n.table};
        return Status::OK();
      }

      case Node::Kind::kFilter: {
        Status s = expect_inputs(1);
        if (!s.ok()) return s;
        s = Walk(n.inputs[0], out);
        if (!s.ok()) return s;
        if (n.predicates.empty()) {
          return Status::InvalidArgument(where + " has no predicates");
        }
        for (const Predicate& p : n.predicates) {
          const Catalog::Column* c = Resolve(p.column, *out);
          if (c == nullptr) {
            return Status::InvalidArgument(
                where + ": predicate references " + p.column.ToString() +
                ", which is not in scope");
          }
          if (c->is_string != p.is_string) {
            return Status::InvalidArgument(
                where + ": predicate on " + p.column.ToString() + " is " +
                (p.is_string ? "string" : "integer") + "-typed but the column is " +
                (c->is_string ? "string" : "integer"));
          }
          const size_t operands = p.is_string ? p.strs.size() : p.ints.size();
          const size_t want = p.op == core::PredOp::kEq     ? 1
                              : p.op == core::PredOp::kRange ? 2
                                                             : operands;
          if (operands != want || operands == 0) {
            return Status::InvalidArgument(where + ": predicate on " +
                                           p.column.ToString() +
                                           " has the wrong operand count");
          }
        }
        return Status::OK();
      }

      case Node::Kind::kJoin: {
        Status s = expect_inputs(2);
        if (!s.ok()) return s;
        Scope left, right;
        s = Walk(n.inputs[0], &left);
        if (!s.ok()) return s;
        s = Walk(n.inputs[1], &right);
        if (!s.ok()) return s;
        s = ResolveIn(n.left_key, left, where + " left key");
        if (!s.ok()) return s;
        s = ResolveIn(n.right_key, right, where + " right key");
        if (!s.ok()) return s;
        out->tables = left.tables;
        for (const std::string& t : right.tables) {
          for (const std::string& seen : out->tables) {
            if (seen == t) {
              return Status::InvalidArgument(
                  where + ": table '" + t + "' scanned more than once");
            }
          }
          out->tables.push_back(t);
        }
        return Status::OK();
      }

      case Node::Kind::kGroupBy: {
        Status s = expect_inputs(1);
        if (!s.ok()) return s;
        s = Walk(n.inputs[0], out);
        if (!s.ok()) return s;
        if (n.group_keys.empty()) {
          return Status::InvalidArgument(where + " has no key columns");
        }
        for (const ColumnRef& key : n.group_keys) {
          if (Resolve(key, *out) == nullptr) {
            return Status::InvalidArgument(where + ": key " + key.ToString() +
                                           " is not in scope");
          }
        }
        out->num_group_keys = static_cast<int>(n.group_keys.size());
        return Status::OK();
      }

      case Node::Kind::kAggregate: {
        Status s = expect_inputs(1);
        if (!s.ok()) return s;
        s = Walk(n.inputs[0], out);
        if (!s.ok()) return s;
        if (out->has_aggregate) {
          return Status::InvalidArgument(where +
                                         ": plan has multiple Aggregate nodes");
        }
        if (n.aggs.empty()) {
          return Status::InvalidArgument(where +
                                         " has no aggregate expressions");
        }
        for (const AggExpr& agg : n.aggs) {
          switch (agg.kind) {
            case core::AggKind::kSumColumn:
            case core::AggKind::kMin:
            case core::AggKind::kMax:
            case core::AggKind::kAvg:
              s = ResolveInt(agg.a, *out, "aggregate");
              if (!s.ok()) return s;
              break;
            case core::AggKind::kSumProduct:
            case core::AggKind::kSumDiff:
              s = ResolveInt(agg.a, *out, "aggregate");
              if (!s.ok()) return s;
              s = ResolveInt(agg.b, *out, "aggregate");
              if (!s.ok()) return s;
              break;
            case core::AggKind::kCountStar:
              // No operand to resolve.
              break;
            case core::AggKind::kCountColumn: {
              // Any existing column counts (values are never NULL here, so
              // COUNT(col) lowers to COUNT(*); the reference just has to
              // resolve).
              const Catalog::Column* c = Resolve(agg.a, *out);
              if (c == nullptr) {
                return Status::InvalidArgument(
                    "aggregate references " + agg.a.ToString() +
                    ", which is not in scope");
              }
              break;
            }
          }
        }
        out->has_aggregate = true;
        return Status::OK();
      }

      case Node::Kind::kSort: {
        Status s = expect_inputs(1);
        if (!s.ok()) return s;
        s = Walk(n.inputs[0], out);
        if (!s.ok()) return s;
        if (!out->has_aggregate) {
          return Status::InvalidArgument(where +
                                         " must sit above the Aggregate node");
        }
        const int keys = out->num_group_keys < 0 ? 0 : out->num_group_keys;
        for (const core::SortKey& k : n.sort) {
          if (k.column == core::SortKey::kMeasure) continue;
          if (k.column < 0 || k.column >= keys) {
            return Status::InvalidArgument(
                where + ": sort key column " + std::to_string(k.column) +
                " out of range (plan has " + std::to_string(keys) +
                " group-by columns)");
          }
        }
        return Status::OK();
      }
    }
    return Status::InvalidArgument(where + ": unknown node kind");
  }

  Status ResolveIn(const ColumnRef& ref, const Scope& scope,
                   const std::string& what) {
    if (Resolve(ref, scope) == nullptr) {
      return Status::InvalidArgument(what + " references " + ref.ToString() +
                                     ", which is not in scope");
    }
    return Status::OK();
  }

  const Plan& plan_;
  const Catalog& catalog_;
  /// DFS colors: 0 unvisited, 1 on stack, 2 done. Revisiting a node on the
  /// stack means a cycle; the builder never produces one, but plans are
  /// data and hand-built graphs get a diagnostic, not a stack overflow.
  std::vector<uint8_t> state_;
};

}  // namespace

Status Validate(const Plan& plan, const Catalog& catalog) {
  return Validator(plan, catalog).Run();
}

}  // namespace cstore::plan
