// Plan validation: resolve every column reference against a catalog.
//
// Validate is the gate between "plan as data" and "plan the engine will
// execute": it walks the DAG once, checking structure (arity, acyclicity,
// single use of each table) and semantics (every table exists, every
// column reference resolves against a table scanned below the referencing
// node, predicate/aggregate operand types match the column types, sort
// keys index real group-by outputs). A plan that validates cleanly lowers
// through plan::LowerToPhysical without surprises; a plan that does not
// never reaches an executor.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan.h"

namespace cstore::plan {

/// Name-and-type view of the tables a plan may reference. Engines build one
/// from their loaded schema (engine::CatalogFor); tests can assemble one by
/// hand.
struct Catalog {
  struct Column {
    std::string name;
    bool is_string = false;
  };
  struct Table {
    std::string name;
    std::vector<Column> columns;
  };

  std::vector<Table> tables;

  /// Table by name, or null.
  const Table* FindTable(const std::string& name) const;
  /// Column by table and name, or null (also null for unknown table).
  const Column* FindColumn(const std::string& table,
                           const std::string& column) const;

  Catalog& AddTable(std::string name,
                    std::vector<Column> columns);
};

/// Checks `plan` against `catalog`; OK means every reference resolved and
/// every node is structurally sound. Errors are InvalidArgument with the
/// offending node/reference named in the message.
Status Validate(const Plan& plan, const Catalog& catalog);

}  // namespace cstore::plan
