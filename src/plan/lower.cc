#include "plan/lower.h"

#include <algorithm>

#include "common/macros.h"

namespace cstore::plan {

namespace {

Status NotStar(const std::string& why) {
  return Status::NotSupported("plan does not lower to a star query: " + why);
}

core::DimPredicate LowerDimPredicate(const Predicate& p) {
  core::DimPredicate d;
  d.dim = p.column.table;
  d.column = p.column.column;
  d.op = p.op;
  d.is_string = p.is_string;
  d.strs = p.strs;
  d.ints = p.ints;
  return d;
}

Status LowerFactPredicate(const Predicate& p, core::FactPredicate* out) {
  if (p.is_string) {
    return NotStar("string predicate on fact column " + p.column.ToString());
  }
  out->column = p.column.column;
  switch (p.op) {
    case core::PredOp::kEq:
      out->lo = p.ints[0];
      out->hi = p.ints[0];
      return Status::OK();
    case core::PredOp::kRange:
      out->lo = p.ints[0];
      out->hi = p.ints[1];
      return Status::OK();
    case core::PredOp::kIn:
      return NotStar("IN predicate on fact column " + p.column.ToString());
  }
  return NotStar("unknown predicate op");
}

}  // namespace

Result<LoweredStar> LowerToStar(const Plan& plan) {
  if (plan.root() < 0) return NotStar("empty plan");
  LoweredStar out;
  out.query.id = plan.id();

  const Node* cur = &plan.node(plan.root());

  if (cur->kind == Node::Kind::kSort) {
    out.query.sort = cur->sort;
    cur = &plan.node(cur->inputs[0]);
  }

  if (cur->kind != Node::Kind::kAggregate) {
    return NotStar("root chain is missing the Aggregate node");
  }
  const AggExpr& agg = cur->agg;
  out.query.agg.kind = agg.kind;
  out.query.agg.column_a = agg.a.column;
  out.query.agg.column_b = agg.b.column;
  cur = &plan.node(cur->inputs[0]);

  if (cur->kind == Node::Kind::kGroupBy) {
    for (const ColumnRef& key : cur->group_keys) {
      out.query.group_by.push_back({key.table, key.column});
    }
    cur = &plan.node(cur->inputs[0]);
  }

  // The join chain, root-down — i.e. reverse of the builder's call order.
  while (cur->kind == Node::Kind::kJoin) {
    const Node* dim = &plan.node(cur->inputs[1]);
    std::vector<core::DimPredicate> dim_preds;
    if (dim->kind == Node::Kind::kFilter) {
      for (const Predicate& p : dim->predicates) {
        dim_preds.push_back(LowerDimPredicate(p));
      }
      dim = &plan.node(dim->inputs[0]);
    }
    if (dim->kind != Node::Kind::kScan) {
      return NotStar("join build side is not Scan or Filter(Scan)");
    }
    for (const core::DimPredicate& p : dim_preds) {
      if (p.dim != dim->table) {
        return NotStar("dimension filter references " + p.dim + "." +
                       p.column + " on the " + dim->table + " build side");
      }
    }
    out.joins.push_back(
        {dim->table, cur->left_key.column, cur->right_key.column});
    out.query.dim_predicates.insert(out.query.dim_predicates.end(),
                                    dim_preds.begin(), dim_preds.end());
    cur = &plan.node(cur->inputs[0]);
  }
  // Restore builder call order (probe order).
  std::reverse(out.joins.begin(), out.joins.end());
  std::reverse(out.query.dim_predicates.begin(),
               out.query.dim_predicates.end());

  if (cur->kind == Node::Kind::kFilter) {
    for (const Predicate& p : cur->predicates) {
      core::FactPredicate fp;
      Status s = LowerFactPredicate(p, &fp);
      if (!s.ok()) return s;
      out.query.fact_predicates.push_back(std::move(fp));
    }
    cur = &plan.node(cur->inputs[0]);
  }

  if (cur->kind != Node::Kind::kScan) {
    return NotStar("probe chain does not bottom out at the fact Scan");
  }
  out.fact_table = cur->table;

  // Cross-checks that need the fact identified: the measure must come off
  // the fact, and group-by keys must be joined dimension attributes.
  if (agg.a.table != out.fact_table ||
      (agg.kind != core::AggKind::kSumColumn &&
       agg.b.table != out.fact_table)) {
    return NotStar("aggregate measure must be fact columns");
  }
  for (const core::GroupByColumn& g : out.query.group_by) {
    if (g.dim == out.fact_table) {
      return NotStar("group-by on fact column " + g.column);
    }
    bool joined = false;
    for (const LoweredStar::JoinEdge& j : out.joins) {
      if (j.dim == g.dim) joined = true;
    }
    if (!joined) {
      return NotStar("group-by references unjoined table " + g.dim);
    }
  }
  for (const core::DimPredicate& p : out.query.dim_predicates) {
    if (p.dim == out.fact_table) {
      return NotStar("fact predicate routed to a dimension filter");
    }
  }

  return out;
}

core::StarQuery LowerToStarQueryOrDie(const Plan& plan) {
  Result<LoweredStar> lowered = LowerToStar(plan);
  CSTORE_CHECK(lowered.ok());
  return std::move(lowered).ValueOrDie().query;
}

}  // namespace cstore::plan
