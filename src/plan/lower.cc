#include "plan/lower.h"

#include <utility>

#include "common/macros.h"

namespace cstore::plan {

Result<LoweredStar> LowerToStar(const Plan& plan) {
  Result<PhysicalPlan> phys = LowerToPhysical(plan);
  if (!phys.ok()) return phys.status();
  PhysicalPlan p = std::move(phys).ValueOrDie();
  if (p.shape != PhysicalPlan::Shape::kStar) {
    return Status::NotSupported(
        "plan does not lower to a star query: base scan reads '" + p.table +
        "', not the fact table");
  }
  if (p.query.aggs.size() != 1 || !p.identity_outputs) {
    return Status::NotSupported(
        "plan does not lower to a star query: it needs " +
        std::to_string(p.query.aggs.size()) +
        " aggregate slot(s) and an output mapping; the classic star form "
        "carries exactly one slot");
  }
  LoweredStar out;
  out.query = std::move(p.query);
  out.fact_table = std::move(p.fact_table);
  out.joins = std::move(p.joins);
  return out;
}

core::StarQuery LowerToStarQueryOrDie(const Plan& plan) {
  Result<LoweredStar> lowered = LowerToStar(plan);
  CSTORE_CHECK(lowered.ok());
  return std::move(lowered).ValueOrDie().query;
}

}  // namespace cstore::plan
