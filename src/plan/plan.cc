#include "plan/plan.h"

#include <utility>

#include "common/macros.h"

namespace cstore::plan {

namespace {

Predicate MakeStr(std::string table, std::string col, core::PredOp op,
                  std::vector<std::string> strs) {
  Predicate p;
  p.column = {std::move(table), std::move(col)};
  p.op = op;
  p.is_string = true;
  p.strs = std::move(strs);
  return p;
}

Predicate MakeInt(std::string table, std::string col, core::PredOp op,
                  std::vector<int64_t> ints) {
  Predicate p;
  p.column = {std::move(table), std::move(col)};
  p.op = op;
  p.is_string = false;
  p.ints = std::move(ints);
  return p;
}

}  // namespace

Predicate Predicate::StrEq(std::string table, std::string col, std::string v) {
  return MakeStr(std::move(table), std::move(col), core::PredOp::kEq,
                 {std::move(v)});
}

Predicate Predicate::StrRange(std::string table, std::string col,
                              std::string lo, std::string hi) {
  return MakeStr(std::move(table), std::move(col), core::PredOp::kRange,
                 {std::move(lo), std::move(hi)});
}

Predicate Predicate::StrIn(std::string table, std::string col,
                           std::vector<std::string> vs) {
  return MakeStr(std::move(table), std::move(col), core::PredOp::kIn,
                 std::move(vs));
}

Predicate Predicate::IntEq(std::string table, std::string col, int64_t v) {
  return MakeInt(std::move(table), std::move(col), core::PredOp::kEq, {v});
}

Predicate Predicate::IntRange(std::string table, std::string col, int64_t lo,
                              int64_t hi) {
  return MakeInt(std::move(table), std::move(col), core::PredOp::kRange,
                 {lo, hi});
}

Predicate Predicate::IntIn(std::string table, std::string col,
                           std::vector<int64_t> vs) {
  return MakeInt(std::move(table), std::move(col), core::PredOp::kIn,
                 std::move(vs));
}

std::string Predicate::ToString() const {
  std::string out = column.ToString();
  auto operand = [&](size_t i) {
    return is_string ? "'" + strs[i] + "'" : std::to_string(ints[i]);
  };
  const size_t n = is_string ? strs.size() : ints.size();
  switch (op) {
    case core::PredOp::kEq:
      out += " = " + operand(0);
      break;
    case core::PredOp::kRange:
      out += " between " + operand(0) + " and " + operand(1);
      break;
    case core::PredOp::kIn:
      out += " in (";
      for (size_t i = 0; i < n; ++i) {
        if (i != 0) out += ", ";
        out += operand(i);
      }
      out += ")";
      break;
  }
  return out;
}

std::string AggExpr::ToString() const {
  switch (kind) {
    case core::AggKind::kSumColumn:
      return "SUM(" + a.ToString() + ")";
    case core::AggKind::kSumProduct:
      return "SUM(" + a.ToString() + " * " + b.ToString() + ")";
    case core::AggKind::kSumDiff:
      return "SUM(" + a.ToString() + " - " + b.ToString() + ")";
    case core::AggKind::kCountStar:
      return "COUNT(*)";
    case core::AggKind::kCountColumn:
      return "COUNT(" + a.ToString() + ")";
    case core::AggKind::kMin:
      return "MIN(" + a.ToString() + ")";
    case core::AggKind::kMax:
      return "MAX(" + a.ToString() + ")";
    case core::AggKind::kAvg:
      return "AVG(" + a.ToString() + ")";
  }
  return "AGG(?)";
}

std::string_view NodeKindName(Node::Kind kind) {
  switch (kind) {
    case Node::Kind::kScan:
      return "Scan";
    case Node::Kind::kFilter:
      return "Filter";
    case Node::Kind::kJoin:
      return "Join";
    case Node::Kind::kGroupBy:
      return "GroupBy";
    case Node::Kind::kAggregate:
      return "Aggregate";
    case Node::Kind::kSort:
      return "Sort";
  }
  return "?";
}

namespace {

void DumpNode(const Plan& plan, int id, int depth, std::string* out) {
  const Node& n = plan.node(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += NodeKindName(n.kind);
  switch (n.kind) {
    case Node::Kind::kScan:
      *out += " " + n.table;
      break;
    case Node::Kind::kFilter:
      *out += " [";
      for (size_t i = 0; i < n.predicates.size(); ++i) {
        if (i != 0) *out += " AND ";
        *out += n.predicates[i].ToString();
      }
      *out += "]";
      break;
    case Node::Kind::kJoin:
      *out += " " + n.left_key.ToString() + " = " + n.right_key.ToString();
      break;
    case Node::Kind::kGroupBy:
      *out += " [";
      for (size_t i = 0; i < n.group_keys.size(); ++i) {
        if (i != 0) *out += ", ";
        *out += n.group_keys[i].ToString();
      }
      *out += "]";
      break;
    case Node::Kind::kAggregate:
      *out += " ";
      for (size_t i = 0; i < n.aggs.size(); ++i) {
        if (i != 0) *out += ", ";
        *out += n.aggs[i].ToString();
      }
      break;
    case Node::Kind::kSort:
      *out += " [";
      for (size_t i = 0; i < n.sort.size(); ++i) {
        if (i != 0) *out += ", ";
        const core::SortKey& k = n.sort[i];
        *out += k.column == core::SortKey::kMeasure
                    ? "measure"
                    : std::to_string(k.column);
        *out += k.ascending ? " asc" : " desc";
      }
      *out += "]";
      break;
  }
  *out += "\n";
  for (int input : n.inputs) DumpNode(plan, input, depth + 1, out);
}

}  // namespace

std::string Plan::ToString() const {
  std::string out = "Plan " + id_ + "\n";
  if (root_ >= 0) DumpNode(*this, root_, 1, &out);
  return out;
}

std::string Plan::SubtreeToString(int id) const {
  std::string out;
  if (id >= 0 && id < static_cast<int>(nodes_.size())) {
    DumpNode(*this, id, 0, &out);
  }
  return out;
}

PlanBuilder& PlanBuilder::Scan(std::string fact_table) {
  fact_ = std::move(fact_table);
  return *this;
}

PlanBuilder& PlanBuilder::Join(std::string dim_table, std::string fact_fk,
                               std::string dim_key) {
  DimJoin j;
  j.table = std::move(dim_table);
  j.fact_fk = std::move(fact_fk);
  j.dim_key = std::move(dim_key);
  joins_.push_back(std::move(j));
  return *this;
}

PlanBuilder& PlanBuilder::Where(Predicate pred) {
  // Route by referenced table: dimension predicates sit below the join that
  // consumes the dimension, everything else filters the fact scan. A
  // predicate naming an unknown table lands on the fact filter, where the
  // validator rejects it with an unknown-table diagnostic.
  for (DimJoin& j : joins_) {
    if (j.table == pred.column.table) {
      j.predicates.push_back(std::move(pred));
      return *this;
    }
  }
  fact_predicates_.push_back(std::move(pred));
  return *this;
}

PlanBuilder& PlanBuilder::GroupBy(std::string table, std::string column) {
  group_keys_.push_back({std::move(table), std::move(column)});
  return *this;
}

PlanBuilder& PlanBuilder::Sum(std::string table, std::string column) {
  AggExpr agg;
  agg.kind = core::AggKind::kSumColumn;
  agg.a = {std::move(table), std::move(column)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::SumProduct(std::string table, std::string col_a,
                                     std::string col_b) {
  AggExpr agg;
  agg.kind = core::AggKind::kSumProduct;
  agg.a = {table, std::move(col_a)};
  agg.b = {std::move(table), std::move(col_b)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::SumDiff(std::string table, std::string col_a,
                                  std::string col_b) {
  AggExpr agg;
  agg.kind = core::AggKind::kSumDiff;
  agg.a = {table, std::move(col_a)};
  agg.b = {std::move(table), std::move(col_b)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::CountStar() {
  AggExpr agg;
  agg.kind = core::AggKind::kCountStar;
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::Count(std::string table, std::string column) {
  AggExpr agg;
  agg.kind = core::AggKind::kCountColumn;
  agg.a = {std::move(table), std::move(column)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::Min(std::string table, std::string column) {
  AggExpr agg;
  agg.kind = core::AggKind::kMin;
  agg.a = {std::move(table), std::move(column)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::Max(std::string table, std::string column) {
  AggExpr agg;
  agg.kind = core::AggKind::kMax;
  agg.a = {std::move(table), std::move(column)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::Avg(std::string table, std::string column) {
  AggExpr agg;
  agg.kind = core::AggKind::kAvg;
  agg.a = {std::move(table), std::move(column)};
  aggs_.push_back(std::move(agg));
  return *this;
}

PlanBuilder& PlanBuilder::OrderBy(int column, bool ascending) {
  sort_.push_back({column, ascending});
  return *this;
}

PlanBuilder& PlanBuilder::OrderByMeasure(bool ascending) {
  sort_.push_back({core::SortKey::kMeasure, ascending});
  return *this;
}

Plan PlanBuilder::Build() const {
  CSTORE_CHECK(!fact_.empty());
  CSTORE_CHECK(!aggs_.empty());
  Plan plan;
  plan.id_ = id_;
  auto add = [&](Node n) {
    plan.nodes_.push_back(std::move(n));
    return static_cast<int>(plan.nodes_.size()) - 1;
  };

  Node fact_scan;
  fact_scan.kind = Node::Kind::kScan;
  fact_scan.table = fact_;
  int cur = add(std::move(fact_scan));

  if (!fact_predicates_.empty()) {
    Node filter;
    filter.kind = Node::Kind::kFilter;
    filter.inputs = {cur};
    filter.predicates = fact_predicates_;
    cur = add(std::move(filter));
  }

  for (const DimJoin& j : joins_) {
    Node dim_scan;
    dim_scan.kind = Node::Kind::kScan;
    dim_scan.table = j.table;
    int dim_top = add(std::move(dim_scan));
    if (!j.predicates.empty()) {
      Node filter;
      filter.kind = Node::Kind::kFilter;
      filter.inputs = {dim_top};
      filter.predicates = j.predicates;
      dim_top = add(std::move(filter));
    }
    Node join;
    join.kind = Node::Kind::kJoin;
    join.inputs = {cur, dim_top};
    join.left_key = {fact_, j.fact_fk};
    join.right_key = {j.table, j.dim_key};
    cur = add(std::move(join));
  }

  if (!group_keys_.empty()) {
    Node group;
    group.kind = Node::Kind::kGroupBy;
    group.inputs = {cur};
    group.group_keys = group_keys_;
    cur = add(std::move(group));
  }

  Node agg;
  agg.kind = Node::Kind::kAggregate;
  agg.inputs = {cur};
  agg.aggs = aggs_;
  cur = add(std::move(agg));

  if (!sort_.empty()) {
    Node sort;
    sort.kind = Node::Kind::kSort;
    sort.inputs = {cur};
    sort.sort = sort_;
    cur = add(std::move(sort));
  }

  plan.root_ = cur;
  return plan;
}

}  // namespace cstore::plan
