// Physical plans: the typed operator layer between the logical DAG and the
// design executors.
//
// plan::LowerToPhysical pattern-matches a validated plan::Plan into a
// PhysicalPlan — a linear pipeline of typed operators (ScanOp → FilterOp →
// JoinOp* → GroupAggOp → SortOp) plus the flattened per-operator payloads
// the executors consume. Each engine::Design lowers once and then drives
// its own access paths from the result; new plan shapes land here, not in
// every executor. Two shapes lower today:
//
//   kStar        — the paper's shape: Scan(fact) probed through dimension
//                  joins. The 13 canned SSB queries are the single-
//                  aggregate instances of this pattern and execute through
//                  exactly the code they always did (bit-identical hashes).
//   kSingleTable — a join-free plan over one table, e.g. a dimension-only
//                  query ("how many 1993 dates", "MIN(custkey) per
//                  nation"). Dimensions are read-only, so these skip the
//                  delta overlay entirely.
//
// Aggregates lower to *slots* + *outputs*: the slot list is what the
// executors accumulate (sum/min/max accumulators only — COUNT is a sum of
// the constant 1), the output list maps slot values onto the query's
// result columns. AVG(a) becomes a SUM(a) slot plus a COUNT(*) slot and a
// kRatio output (truncating int64 division); COUNT(col) becomes COUNT(*)
// (SSB columns are never NULL). Ungrouped plans with MIN/MAX slots get a
// hidden COUNT(*) slot so a merge of partial results (delta overlay,
// worker partials) can tell an empty side from a real extremum; hidden
// slots are dropped by the output mapping.
//
// Lowering is structural — no catalog needed — so the ssb layer can lower
// plans (e.g. to build materialized views) without depending on the
// engine. Anything that does not match is rejected with NotSupported
// naming the offending node kind and quoting the rejected subtree.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/star_query.h"
#include "plan/plan.h"

namespace cstore::plan {

/// The SSB fact table name. Join-free plans over this table keep the star
/// fast path (partition pruning, tombstones, the row designs' fact access
/// paths); join-free plans over any other table lower to kSingleTable.
/// Plans with joins always lower to kStar with the base scan as the fact
/// table, whatever its name — the engine cross-checks it per design.
inline constexpr std::string_view kFactTableName = "lineorder";

/// One join edge the plan asserted: fact.fact_fk = dim.dim_key. The
/// engine's planner cross-checks these against the design's StarSchema
/// before executing.
struct JoinEdge {
  std::string dim;       ///< dimension table name
  std::string fact_fk;   ///< fact column joined on
  std::string dim_key;   ///< dimension key column joined on
};

/// One typed physical operator. A tagged struct like plan::Node: the
/// pipeline is data the adapters walk, and only the fields for each kind
/// are meaningful. Operators appear in pipeline order (scan first); a
/// JoinOp carries its build side (the dimension scan + filter) inline.
struct PhysicalOp {
  enum class Kind { kScan, kFilter, kJoin, kGroupAgg, kSort };

  Kind kind = Kind::kScan;

  std::string table;  ///< kScan: the base table

  /// kFilter: conjuncts on the base table — integer ranges for the fact
  /// scan (star shape), arbitrary single-column predicates for a
  /// single-table scan.
  std::vector<core::FactPredicate> fact_predicates;
  std::vector<core::DimPredicate> table_predicates;

  /// kJoin: the edge plus the build side's predicates.
  JoinEdge edge;
  std::vector<core::DimPredicate> build_predicates;

  /// kGroupAgg: keys, accumulator slots, and the slot→output mapping.
  std::vector<core::GroupByColumn> group_by;
  std::vector<core::Aggregate> slots;
  std::vector<core::OutputSpec> outputs;

  core::SortSpec sort;  ///< kSort: the query's result ordering

  std::string ToString() const;
};

/// A lowered physical plan: the typed operator pipeline plus the flattened
/// payloads the executors consume.
struct PhysicalPlan {
  enum class Shape {
    kStar,         ///< Scan(fact) [Filter] Join* GroupAgg [Sort]
    kSingleTable,  ///< Scan(t) [Filter] GroupAgg [Sort], t not the fact
  };

  Shape shape = Shape::kStar;

  /// The operator pipeline, scan first.
  std::vector<PhysicalOp> ops;

  /// Flattened executor payload. `query.aggs` is the slot list;
  /// `query.sort` is the *executor* sort: the plan's ordering when the
  /// outputs are the identity (so single-aggregate plans execute exactly
  /// as before), empty (canonical group order) otherwise — the final
  /// ordering is then applied after ApplyOutputs.
  core::StarQuery query;

  std::string table;       ///< kSingleTable: the scanned table
  std::string fact_table;  ///< kStar: the fact table name
  std::vector<JoinEdge> joins;  ///< kStar: in builder call order

  /// Slot→output mapping and the ordering to apply after it. When
  /// `identity_outputs` the executor's result is final and both are no-ops.
  std::vector<core::OutputSpec> outputs;
  core::SortSpec final_sort;
  bool identity_outputs = false;

  std::string ToString() const;
};

/// Lowers a validated plan to its physical form, or NotSupported with the
/// offending node kind and the rejected subtree quoted. Does not validate
/// column references — run plan::Validate first when the plan comes from
/// outside.
Result<PhysicalPlan> LowerToPhysical(const Plan& plan);

/// Finalizes an executor's result against the plan's output mapping:
/// applies slot→output specs (dropping hidden slots) and the final sort.
/// No-op for identity outputs, so legacy star results pass through
/// untouched.
void FinalizeResult(const PhysicalPlan& plan, core::QueryResult* result);

/// The closed interval `plan`'s fact predicates confine `column` to: the
/// intersection of every conjunct on that column. Unconstrained columns
/// come back [INT64_MIN, INT64_MAX]; an unsatisfiable conjunction comes
/// back with lo > hi. Partition pruning intersects this with a shard's
/// manifest bounds — a plan whose interval misses the shard's value range
/// cannot match any of its rows.
struct FactColumnBounds {
  int64_t lo;
  int64_t hi;
};
FactColumnBounds FactBoundsFor(const PhysicalPlan& plan,
                               std::string_view column);

}  // namespace cstore::plan
