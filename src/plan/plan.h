// Logical plan IR: queries as data.
//
// A query enters the engine as a plan::Plan — a DAG of relational nodes
// (Scan → Filter → Join → GroupBy → Aggregate → Sort) assembled with the
// fluent PlanBuilder. The engine never pattern-matches canned query
// structs: engine::Session::Run takes a Plan, validates it against the
// catalog (validate.h), and each engine::Design lowers the validated plan
// onto its own access paths (physical.h produces the typed physical
// operator plan each design executes; the flat star form in
// core/star_query.h is its per-operator payload).
//
// The IR deliberately reuses the executors' value vocabulary — PredOp,
// AggKind, SortKey — so lowering is a structural walk, not a translation
// layer, and a plan that validates cleanly lowers without loss.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/star_query.h"

namespace cstore::plan {

/// A column reference, `table.column`, both by name. `table` names the
/// Scan node that produces the column ("lineorder", "date", ...).
struct ColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
};

/// A single-column predicate, value-typed. The executors support
/// conjunctions of per-column predicates (the star-schema WHERE shape), so
/// the IR does not need a general expression tree — a Filter node carries a
/// vector of these, implicitly ANDed.
struct Predicate {
  ColumnRef column;
  core::PredOp op = core::PredOp::kEq;
  bool is_string = true;
  std::vector<std::string> strs;  ///< kEq: {v}; kRange: {lo, hi}; kIn: set
  std::vector<int64_t> ints;      ///< same, for integer columns

  static Predicate StrEq(std::string table, std::string col, std::string v);
  static Predicate StrRange(std::string table, std::string col, std::string lo,
                            std::string hi);
  static Predicate StrIn(std::string table, std::string col,
                         std::vector<std::string> vs);
  static Predicate IntEq(std::string table, std::string col, int64_t v);
  static Predicate IntRange(std::string table, std::string col, int64_t lo,
                            int64_t hi);
  static Predicate IntIn(std::string table, std::string col,
                         std::vector<int64_t> vs);

  std::string ToString() const;
};

/// One aggregate expression: SUM over a one- or two-column expression,
/// COUNT(*)/COUNT(col), MIN, MAX, or AVG. An Aggregate node carries a
/// vector of these — one output column per expression, in order.
struct AggExpr {
  core::AggKind kind = core::AggKind::kSumColumn;
  ColumnRef a;  ///< empty for kCountStar
  ColumnRef b;  ///< second operand for kSumProduct/kSumDiff

  std::string ToString() const;
};

/// One plan node. A tagged struct, not a class hierarchy: plans are data
/// the planner pattern-matches, and the payload fields meaningful for each
/// kind are documented inline.
struct Node {
  enum class Kind { kScan, kFilter, kJoin, kGroupBy, kAggregate, kSort };

  Kind kind = Kind::kScan;
  /// Ids (indices into Plan::nodes()) of the input nodes. Scans have none;
  /// Joins have exactly two (left = probe side, right = build side); the
  /// rest have exactly one.
  std::vector<int> inputs;

  std::string table;                  ///< kScan: table name
  std::vector<Predicate> predicates;  ///< kFilter: conjunction
  ColumnRef left_key;                 ///< kJoin: equi-join key, left input
  ColumnRef right_key;                ///< kJoin: equi-join key, right input
  std::vector<ColumnRef> group_keys;  ///< kGroupBy: output key columns
  std::vector<AggExpr> aggs;          ///< kAggregate: one or more outputs
  core::SortSpec sort;                ///< kSort: result ordering
};

/// Printable node-kind name, e.g. "Join".
std::string_view NodeKindName(Node::Kind kind);

/// A logical query plan: nodes in a flat arena, edges by id, one root.
/// Immutable once built (PlanBuilder is the only writer); cheap to copy.
class Plan {
 public:
  Plan() = default;

  const std::string& id() const { return id_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }
  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }

  /// Indented operator-tree dump (root first), for tests and debugging.
  std::string ToString() const;

  /// Dump of the subtree rooted at node `id` — lowering diagnostics quote
  /// the exact subtree they rejected.
  std::string SubtreeToString(int id) const;

 private:
  friend class PlanBuilder;

  std::string id_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Fluent builder for the plan shapes the physical designs execute: star
/// plans (a fact scan joined to dimensions) and single-table plans (a scan
/// with no joins — including dimension-only queries). Call order:
///
///   plan::Plan p = plan::PlanBuilder("2.1")
///       .Scan("lineorder")
///       .Join("part", "partkey", "partkey")
///       .Join("supplier", "suppkey", "suppkey")
///       .Join("date", "orderdate", "datekey")
///       .Where(plan::Predicate::StrEq("part", "category", "MFGR#12"))
///       .Where(plan::Predicate::StrEq("supplier", "region", "AMERICA"))
///       .GroupBy("date", "year").GroupBy("part", "brand1")
///       .Sum("lineorder", "revenue")
///       .Build();
///
/// Where() routes each predicate to the scan of the table it references
/// (base-table predicates filter above the base scan, dimension predicates
/// below the join that consumes the dimension), so selection pushdown is a
/// property of the built plan, not a planner rewrite. Each aggregate call
/// appends one output column, in call order. Build() materializes the node
/// DAG; it does not validate — pass the plan through plan::Validate before
/// executing it.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string query_id) : id_(std::move(query_id)) {}

  /// The base table (exactly one per plan): the fact table of a star plan,
  /// or the single table — e.g. a dimension — of a join-free plan.
  PlanBuilder& Scan(std::string base_table);

  /// Joins a dimension: base.`fact_fk` = dim.`dim_key`. Join order in the
  /// plan follows call order.
  PlanBuilder& Join(std::string dim_table, std::string fact_fk,
                    std::string dim_key);

  /// Adds a conjunct, routed by the table it references.
  PlanBuilder& Where(Predicate pred);

  /// Appends a group-by key column.
  PlanBuilder& GroupBy(std::string table, std::string column);

  /// Aggregates. Every call appends one output column; a plan needs at
  /// least one and may carry several (multi-aggregate plans).
  PlanBuilder& Sum(std::string table, std::string column);
  PlanBuilder& SumProduct(std::string table, std::string col_a,
                          std::string col_b);
  PlanBuilder& SumDiff(std::string table, std::string col_a,
                       std::string col_b);
  PlanBuilder& CountStar();
  PlanBuilder& Count(std::string table, std::string column);
  PlanBuilder& Min(std::string table, std::string column);
  PlanBuilder& Max(std::string table, std::string column);
  PlanBuilder& Avg(std::string table, std::string column);

  /// Appends a result-ordering key on group-by output column `column`
  /// (index into the GroupBy keys, in call order). Omitting OrderBy
  /// entirely yields the canonical order: group columns ascending.
  PlanBuilder& OrderBy(int column, bool ascending = true);
  /// Appends a result-ordering key on the first aggregate output.
  PlanBuilder& OrderByMeasure(bool ascending = true);

  /// Materializes the node DAG. The builder stays usable (Build is const).
  Plan Build() const;

 private:
  struct DimJoin {
    std::string table;
    std::string fact_fk;
    std::string dim_key;
    std::vector<Predicate> predicates;
  };

  std::string id_;
  std::string fact_;
  std::vector<Predicate> fact_predicates_;
  std::vector<DimJoin> joins_;
  std::vector<ColumnRef> group_keys_;
  std::vector<AggExpr> aggs_;
  core::SortSpec sort_;
};

}  // namespace cstore::plan
