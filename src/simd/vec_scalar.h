// Scalar instantiation of the simd::Vec wrapper: one lane, plain C++.
//
// This is the portability floor — the kernel templates in kernels_impl.h
// instantiate against it on targets with no vector ISA (and when CSTORE_SIMD
// is forced off), so every kernel has a always-available twin whose results
// the vector instantiations must match bit for bit.
#pragma once

#include <cstdint>

namespace cstore::simd::scalar {

/// One-lane "vector". Comparison results are lane masks (0 or 1) so the
/// kernel templates can treat mask registers uniformly across ISAs.
template <typename T>
struct Vec {
  static constexpr uint32_t kLanes = 1;
  static constexpr uint32_t kLaneMask = 0x1u;

  T v;

  static Vec LoadU(const T* p) { return Vec{*p}; }
  static Vec Broadcast(T x) { return Vec{x}; }

  friend Vec CmpGt(Vec a, Vec b) { return Vec{static_cast<T>(a.v > b.v)}; }
  friend Vec CmpEq(Vec a, Vec b) { return Vec{static_cast<T>(a.v == b.v)}; }
  friend Vec Or(Vec a, Vec b) {
    return Vec{static_cast<T>(a.v | b.v)};
  }
  /// Per-lane match bit (lane masks in, bitmask out).
  static uint32_t MoveMask(Vec m) { return static_cast<uint32_t>(m.v & 1); }
};

}  // namespace cstore::simd::scalar
