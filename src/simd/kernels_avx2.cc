// AVX2 kernel instantiations. The ONLY translation unit compiled with -mavx2
// (CMake sets the flag per-source); simd.cc enters it only after
// __builtin_cpu_supports("avx2"), so no AVX2 instruction can execute on a
// CPU that lacks it.

#if CSTORE_SIMD_HAVE_AVX2_TU

#include <immintrin.h>

#include "simd/kernels_entry.h"
#include "simd/kernels_impl.h"
#include "simd/vec_avx2.h"

namespace cstore::simd {
namespace {

/// out[i] = base + i-th `bits`-wide group, 4 values per iteration: gather the
/// word each group starts in plus its successor, variable-shift both into
/// place, mask. vpsrlvq/vpsllvq yield 0 for shift counts >= 64, so the
/// straddle OR is unconditional — a group at offset 0 shifts the successor
/// left by 64 and contributes nothing. The successor gather is why `words`
/// must stay readable one word past the end (page slack word).
void Avx2UnpackBitsInt64(const uint64_t* words, uint8_t bits, uint32_t n,
                         int64_t base, int64_t* out) {
  if (bits >= 64) {
    detail::ScalarUnpackBitsInt64(words, bits, n, base, out);
    return;
  }
  const __m256i vmask = _mm256_set1_epi64x((int64_t{1} << bits) - 1);
  const __m256i vbase = _mm256_set1_epi64x(base);
  const __m256i v63 = _mm256_set1_epi64x(63);
  const __m256i v64 = _mm256_set1_epi64x(64);
  const __m256i lane_step = _mm256_set_epi64x(3 * int64_t{bits},
                                              2 * int64_t{bits}, bits, 0);
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i pos = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<int64_t>(i) * bits), lane_step);
    const __m256i widx = _mm256_srli_epi64(pos, 6);
    const __m256i off = _mm256_and_si256(pos, v63);
    const __m256i lo = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(words), widx, 8);
    const __m256i hi = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(words + 1), widx, 8);
    __m256i v = _mm256_or_si256(
        _mm256_srlv_epi64(lo, off),
        _mm256_sllv_epi64(hi, _mm256_sub_epi64(v64, off)));
    v = _mm256_and_si256(v, vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(v, vbase));
  }
  for (; i < n; ++i) {
    out[i] = base + static_cast<int64_t>(detail::UnpackOne(words, bits, i));
  }
}

void Avx2WidenInt32(const int32_t* in, uint32_t n, int64_t* out) {
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i))));
  }
  for (; i < n; ++i) out[i] = in[i];
}

void Avx2GatherInt32(const int32_t* vals, const uint32_t* idx, uint32_t k,
                     int64_t* out) {
  uint32_t j = 0;
  while (j < k) {
    const uint32_t r = detail::RunLength(idx, j, k);
    if (r >= 4) {
      Avx2WidenInt32(vals + idx[j], r, out + j);
      j += r;
    } else if (j + 4 <= k) {
      // Scattered positions: hardware-gather four int32s, widen, store.
      const __m128i vi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
      const __m128i g = _mm_i32gather_epi32(
          reinterpret_cast<const int*>(vals), vi, 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                          _mm256_cvtepi32_epi64(g));
      j += 4;
    } else {
      out[j] = vals[idx[j]];
      ++j;
    }
  }
}

void Avx2GatherInt64(const int64_t* vals, const uint32_t* idx, uint32_t k,
                     int64_t* out) {
  uint32_t j = 0;
  while (j < k) {
    const uint32_t r = detail::RunLength(idx, j, k);
    if (r >= 4) {
      std::memcpy(out + j, vals + idx[j], static_cast<size_t>(r) * 8);
      j += r;
    } else if (j + 4 <= k) {
      const __m128i vi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + j),
          _mm256_i32gather_epi64(reinterpret_cast<const long long*>(vals),
                                 vi, 8));
      j += 4;
    } else {
      out[j] = vals[idx[j]];
      ++j;
    }
  }
}

}  // namespace

const EntryTable& Avx2Table() {
  using K = detail::Kernels<avx2::Vec>;
  static const EntryTable t = {
      &K::RangeMatch<int32_t>,
      &K::RangeMatch<int64_t>,
      &K::AnyEqMatch<int32_t>,
      &K::AnyEqMatch<int64_t>,
      &K::StrEqAnyMatch,
      &Avx2UnpackBitsInt64,
      &Avx2WidenInt32,
      &Avx2GatherInt32,
      &Avx2GatherInt64,
  };
  return t;
}

}  // namespace cstore::simd

#endif  // CSTORE_SIMD_HAVE_AVX2_TU
