// NEON (aarch64) instantiation of the simd::Vec wrapper.
//
// NEON has no movemask; the standard substitute is an AND with per-lane bit
// weights followed by a horizontal add (vaddvq), which exists on aarch64.
// Only kernels_generic.cc includes this, and only under __aarch64__ with
// __ARM_NEON — NEON is baseline there, so no extra compile flags or runtime
// checks are needed.
#pragma once

#include <arm_neon.h>

#include <cstdint>

namespace cstore::simd::neon {

template <typename T>
struct Vec;

/// 4 x int32 in an int32x4_t. Comparison results are all-ones lanes
/// (reinterpreted back to the signed type so masks and values share a
/// register type, as on AVX2).
template <>
struct Vec<int32_t> {
  static constexpr uint32_t kLanes = 4;
  static constexpr uint32_t kLaneMask = 0xfu;

  int32x4_t v;

  static Vec LoadU(const int32_t* p) { return Vec{vld1q_s32(p)}; }
  static Vec Broadcast(int32_t x) { return Vec{vdupq_n_s32(x)}; }

  friend Vec CmpGt(Vec a, Vec b) {
    return Vec{vreinterpretq_s32_u32(vcgtq_s32(a.v, b.v))};
  }
  friend Vec CmpEq(Vec a, Vec b) {
    return Vec{vreinterpretq_s32_u32(vceqq_s32(a.v, b.v))};
  }
  friend Vec Or(Vec a, Vec b) { return Vec{vorrq_s32(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    const uint32x4_t bits = {1u, 2u, 4u, 8u};
    return vaddvq_u32(vandq_u32(vreinterpretq_u32_s32(m.v), bits));
  }
};

/// 2 x int64 in an int64x2_t.
template <>
struct Vec<int64_t> {
  static constexpr uint32_t kLanes = 2;
  static constexpr uint32_t kLaneMask = 0x3u;

  int64x2_t v;

  static Vec LoadU(const int64_t* p) { return Vec{vld1q_s64(p)}; }
  static Vec Broadcast(int64_t x) { return Vec{vdupq_n_s64(x)}; }

  friend Vec CmpGt(Vec a, Vec b) {
    return Vec{vreinterpretq_s64_u64(vcgtq_s64(a.v, b.v))};
  }
  friend Vec CmpEq(Vec a, Vec b) {
    return Vec{vreinterpretq_s64_u64(vceqq_s64(a.v, b.v))};
  }
  friend Vec Or(Vec a, Vec b) { return Vec{vorrq_s64(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    const uint64x2_t bits = {1u, 2u};
    return static_cast<uint32_t>(
        vaddvq_u64(vandq_u64(vreinterpretq_u64_s64(m.v), bits)));
  }
};

/// 16 x uint8 in a uint8x16_t (fixed-width char compares).
template <>
struct Vec<uint8_t> {
  static constexpr uint32_t kLanes = 16;
  static constexpr uint32_t kLaneMask = 0xffffu;

  uint8x16_t v;

  static Vec LoadU(const uint8_t* p) { return Vec{vld1q_u8(p)}; }
  static Vec Broadcast(uint8_t x) { return Vec{vdupq_n_u8(x)}; }

  friend Vec CmpEq(Vec a, Vec b) { return Vec{vceqq_u8(a.v, b.v)}; }
  friend Vec Or(Vec a, Vec b) { return Vec{vorrq_u8(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128,
                             1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t w = vandq_u8(m.v, bits);
    return static_cast<uint32_t>(vaddv_u8(vget_low_u8(w))) |
           (static_cast<uint32_t>(vaddv_u8(vget_high_u8(w))) << 8);
  }
};

}  // namespace cstore::simd::neon
