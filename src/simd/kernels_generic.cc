// Baseline kernel instantiations: scalar always, NEON on aarch64.
//
// This TU is compiled with the project's default flags — no ISA extensions —
// so the scalar table is runnable on any target the project builds for. The
// NEON instantiation rides along on aarch64, where NEON is baseline.

#include "simd/kernels_entry.h"
#include "simd/kernels_impl.h"
#include "simd/vec_scalar.h"

#if defined(__aarch64__) && defined(__ARM_NEON)
#include "simd/vec_neon.h"
#endif

namespace cstore::simd {

const EntryTable& ScalarTable() {
  using K = detail::Kernels<scalar::Vec>;
  static const EntryTable t = {
      &K::RangeMatch<int32_t>,
      &K::RangeMatch<int64_t>,
      &K::AnyEqMatch<int32_t>,
      &K::AnyEqMatch<int64_t>,
      &K::StrEqAnyMatch,
      &detail::ScalarUnpackBitsInt64,
      &detail::ScalarWidenInt32,
      &detail::ScalarGatherInt32,
      &detail::ScalarGatherInt64,
  };
  return t;
}

#if defined(__aarch64__) && defined(__ARM_NEON)
// NEON vectorizes the compare->bitmap kernels; the decode/gather helpers stay
// on the shared scalar bodies (contiguous runs already move through memcpy).
const EntryTable& NeonTable() {
  using K = detail::Kernels<neon::Vec>;
  static const EntryTable t = {
      &K::RangeMatch<int32_t>,
      &K::RangeMatch<int64_t>,
      &K::AnyEqMatch<int32_t>,
      &K::AnyEqMatch<int64_t>,
      &K::StrEqAnyMatch,
      &detail::ScalarUnpackBitsInt64,
      &detail::ScalarWidenInt32,
      &detail::ScalarGatherInt32,
      &detail::ScalarGatherInt64,
  };
  return t;
}
#endif

}  // namespace cstore::simd
