// Internal per-ISA kernel entry points (function-pointer table).
//
// Each ISA translation unit (kernels_generic.cc, kernels_avx2.cc) exports one
// EntryTable of its kernel instantiations; simd.cc picks a table once at
// startup and routes the public API through it. Tables rather than extern
// functions keep the per-ISA symbols out of any shared namespace — the AVX2
// TU is the only code compiled with -mavx2, and nothing outside it can
// accidentally inline an AVX2 body into a baseline TU.
#pragma once

#include <cstdint>

#include "util/bit_vector.h"

namespace cstore::simd {

struct EntryTable {
  uint64_t (*range_match_i32)(const int32_t* vals, uint32_t n, int32_t lo,
                              int32_t hi, uint64_t pos, util::BitVector* out);
  uint64_t (*range_match_i64)(const int64_t* vals, uint32_t n, int64_t lo,
                              int64_t hi, uint64_t pos, util::BitVector* out);
  uint64_t (*any_eq_i32)(const int32_t* vals, uint32_t n,
                         const int32_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out);
  uint64_t (*any_eq_i64)(const int64_t* vals, uint32_t n,
                         const int64_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out);
  uint64_t (*str_eq_any)(const char* data, uint32_t n, size_t width,
                         const char* limit, const char* patterns, uint32_t k,
                         uint64_t pos, util::BitVector* out);
  void (*unpack_bits_i64)(const uint64_t* words, uint8_t bits, uint32_t n,
                          int64_t base, int64_t* out);
  void (*widen_i32)(const int32_t* in, uint32_t n, int64_t* out);
  void (*gather_i32)(const int32_t* vals, const uint32_t* idx, uint32_t k,
                     int64_t* out);
  void (*gather_i64)(const int64_t* vals, const uint32_t* idx, uint32_t k,
                     int64_t* out);
};

/// Always compiled (kernels_generic.cc).
const EntryTable& ScalarTable();

#if defined(__aarch64__) && defined(__ARM_NEON)
/// aarch64 builds only (kernels_generic.cc).
const EntryTable& NeonTable();
#endif

#if CSTORE_SIMD_HAVE_AVX2_TU
/// Defined only when kernels_avx2.cc is built with -mavx2; call only after a
/// runtime __builtin_cpu_supports("avx2") check.
const EntryTable& Avx2Table();
#endif

}  // namespace cstore::simd
