// Portable SIMD scan/gather kernels (public dispatch surface).
//
// The hot page kernels — predicate compare → match bitmap, bit-unpacking,
// fixed-width char equality, selective gather by position list — are written
// once against the simd::Vec wrapper (vec_*.h) and compiled per ISA: an AVX2
// translation unit (built when the compiler supports -mavx2, taken when the
// CPU reports AVX2 at runtime), a NEON instantiation on aarch64, and a
// scalar instantiation that exists everywhere. Every kernel is a bit-exact
// replacement of the scalar reference loop it displaces: same match bits,
// same output values, same counts — "same bits, fewer cycles" is enforced by
// the scalar-vs-SIMD twin tests and the CI result-hash gates.
//
// Kernel choice is layered:
//  * core::ExecConfig::use_simd (default on) — per-query knob; off runs the
//    reference scalar loops in core/scan.cc and core/gather.cc so benches
//    can measure scalar-vs-SIMD twins of identical plans.
//  * CSTORE_SIMD=off (or "scalar"/"0") in the environment — process-wide
//    kill switch consulted once; dispatch then resolves to the scalar
//    instantiation even where AVX2/NEON is available. CI uses this to run
//    the whole suite and the figure benches at both settings.
//
// Match-bitmap kernels write whole 64-bit mask words through
// util::BitVector::OrMask — never per-bit Set — so a page scan costs two
// word ORs per 64 values instead of 64 read-modify-writes.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bit_vector.h"

namespace cstore::simd {

/// The instruction set the kernel dispatch resolves to on this process:
/// "avx2", "neon", or "scalar". Cached after the first call (the CSTORE_SIMD
/// environment override is read once).
std::string_view ActiveIsa();

/// True when the AVX2 kernel translation unit was compiled in (regardless of
/// what the CPU supports at runtime).
bool Avx2Compiled();

/// True when dispatch resolves to a vector ISA (AVX2 or NEON) — i.e. the
/// "SIMD twin" of a benchmark genuinely ran vector kernels.
bool VectorIsaActive();

/// Maximum distinct values the any-equal (IN-set) kernels accept; larger
/// sets stay on the scalar hash-probe path.
inline constexpr uint32_t kMaxAnyEqTargets = 16;

// ---------------------------------------------------------------------------
// Predicate compare -> match bitmap. Each sets bit `pos + i` in `out` for
// every matching vals[i] and returns the number of matches. Bits are ORed in
// as whole mask words (BitVector::OrMask).
// ---------------------------------------------------------------------------

/// vals[i] in [lo, hi] (bounds clamped to int32 internally; an empty clamped
/// range matches nothing).
uint64_t RangeMatchInt32(const int32_t* vals, uint32_t n, int64_t lo,
                         int64_t hi, uint64_t pos, util::BitVector* out);
uint64_t RangeMatchInt64(const int64_t* vals, uint32_t n, int64_t lo,
                         int64_t hi, uint64_t pos, util::BitVector* out);

/// vals[i] equal to any of targets[0..k), k <= kMaxAnyEqTargets. Targets
/// outside the int32 domain are ignored by the int32 variant (they cannot
/// match a stored int32).
uint64_t AnyEqMatchInt32(const int32_t* vals, uint32_t n,
                         const int64_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out);
uint64_t AnyEqMatchInt64(const int64_t* vals, uint32_t n,
                         const int64_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out);

/// Fixed-width char equality-any: value i occupies the `width` bytes at
/// data + i*width (NUL padded). `patterns` holds k candidate values, each
/// padded with NULs to exactly `width` bytes and concatenated; the caller
/// must leave at least 32 readable bytes after the last pattern (vector
/// loads read a full lane). `limit` is one past the readable end of the
/// buffer backing `data` (for page payloads: PageView::payload_end());
/// values too close to it are compared scalar so vector loads never cross
/// it. Each value yields at most one match bit, so duplicated patterns are
/// harmless.
uint64_t StrEqAnyMatch(const char* data, uint32_t n, size_t width,
                       const char* limit, const char* patterns, uint32_t k,
                       uint64_t pos, util::BitVector* out);

// ---------------------------------------------------------------------------
// Decode kernels.
// ---------------------------------------------------------------------------

/// out[i] = base + (i-th `bits`-wide group of `words`), little-endian bit
/// order, groups packed contiguously across word boundaries. The AVX2 path
/// gathers straddling words unconditionally, so `words` must be readable one
/// 64-bit word past the last used word — encoded kBitPack pages reserve that
/// slack (compress::MaxValuesPerPage); raw test buffers must allocate it.
void UnpackBitsInt64(const uint64_t* words, uint8_t bits, uint32_t n,
                     int64_t base, int64_t* out);

/// out[i] = in[i], widening int32 -> int64.
void WidenInt32(const int32_t* in, uint32_t n, int64_t* out);

// ---------------------------------------------------------------------------
// Selective gather by position list: out[j] = vals[idx[j]] for j in [0, k).
// idx is strictly increasing (bitmap positions); contiguous runs are
// detected and copied with vector loads, scattered positions use hardware
// gathers on AVX2 and a per-position scalar fallback elsewhere.
// ---------------------------------------------------------------------------

void GatherInt32(const int32_t* vals, const uint32_t* idx, uint32_t k,
                 int64_t* out);
void GatherInt64(const int64_t* vals, const uint32_t* idx, uint32_t k,
                 int64_t* out);

}  // namespace cstore::simd
