// AVX2 instantiation of the simd::Vec wrapper.
//
// Only kernels_avx2.cc includes this, and that translation unit is compiled
// with -mavx2 (CMake adds the flag when the compiler supports it); dispatch
// (simd.cc) calls into it only after __builtin_cpu_supports("avx2") says the
// CPU executes the instructions.
#pragma once

#include <immintrin.h>

#include <cstdint>

namespace cstore::simd::avx2 {

template <typename T>
struct Vec;

/// 8 x int32 in a __m256i. Comparison results are all-ones lanes.
template <>
struct Vec<int32_t> {
  static constexpr uint32_t kLanes = 8;
  static constexpr uint32_t kLaneMask = 0xffu;

  __m256i v;

  static Vec LoadU(const int32_t* p) {
    return Vec{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static Vec Broadcast(int32_t x) { return Vec{_mm256_set1_epi32(x)}; }

  friend Vec CmpGt(Vec a, Vec b) {
    return Vec{_mm256_cmpgt_epi32(a.v, b.v)};
  }
  friend Vec CmpEq(Vec a, Vec b) {
    return Vec{_mm256_cmpeq_epi32(a.v, b.v)};
  }
  friend Vec Or(Vec a, Vec b) { return Vec{_mm256_or_si256(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    return static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(m.v)));
  }
};

/// 4 x int64 in a __m256i.
template <>
struct Vec<int64_t> {
  static constexpr uint32_t kLanes = 4;
  static constexpr uint32_t kLaneMask = 0xfu;

  __m256i v;

  static Vec LoadU(const int64_t* p) {
    return Vec{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static Vec Broadcast(int64_t x) { return Vec{_mm256_set1_epi64x(x)}; }

  friend Vec CmpGt(Vec a, Vec b) {
    return Vec{_mm256_cmpgt_epi64(a.v, b.v)};
  }
  friend Vec CmpEq(Vec a, Vec b) {
    return Vec{_mm256_cmpeq_epi64(a.v, b.v)};
  }
  friend Vec Or(Vec a, Vec b) { return Vec{_mm256_or_si256(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    return static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(m.v)));
  }
};

/// 32 x uint8 in a __m256i (fixed-width char compares).
template <>
struct Vec<uint8_t> {
  static constexpr uint32_t kLanes = 32;
  static constexpr uint32_t kLaneMask = 0xffffffffu;

  __m256i v;

  static Vec LoadU(const uint8_t* p) {
    return Vec{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static Vec Broadcast(uint8_t x) {
    return Vec{_mm256_set1_epi8(static_cast<char>(x))};
  }

  friend Vec CmpEq(Vec a, Vec b) {
    return Vec{_mm256_cmpeq_epi8(a.v, b.v)};
  }
  friend Vec Or(Vec a, Vec b) { return Vec{_mm256_or_si256(a.v, b.v)}; }
  static uint32_t MoveMask(Vec m) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(m.v));
  }
};

}  // namespace cstore::simd::avx2
