// Kernel dispatch: resolves the active ISA once per process and routes the
// public API through the chosen EntryTable.

#include "simd/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/macros.h"
#include "simd/kernels_entry.h"

namespace cstore::simd {
namespace {

enum class Tier { kScalar, kNeon, kAvx2 };

Tier DetectTier() {
  // Process-wide kill switch: CSTORE_SIMD=off|scalar|0 pins the scalar
  // instantiation so CI can run the whole suite as the "scalar twin".
  if (const char* env = std::getenv("CSTORE_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return Tier::kScalar;
    }
  }
#if CSTORE_SIMD_HAVE_AVX2_TU
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

Tier ActiveTier() {
  static const Tier tier = DetectTier();
  return tier;
}

const EntryTable& Table() {
  static const EntryTable& table = []() -> const EntryTable& {
    switch (ActiveTier()) {
#if CSTORE_SIMD_HAVE_AVX2_TU
      case Tier::kAvx2:
        return Avx2Table();
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
      case Tier::kNeon:
        return NeonTable();
#endif
      default:
        return ScalarTable();
    }
  }();
  return table;
}

}  // namespace

std::string_view ActiveIsa() {
  switch (ActiveTier()) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

bool Avx2Compiled() {
#if CSTORE_SIMD_HAVE_AVX2_TU
  return true;
#else
  return false;
#endif
}

bool VectorIsaActive() { return ActiveTier() != Tier::kScalar; }

uint64_t RangeMatchInt32(const int32_t* vals, uint32_t n, int64_t lo,
                         int64_t hi, uint64_t pos, util::BitVector* out) {
  // Clamp the int64 predicate bounds into the stored domain so the kernel
  // compares int32 against int32; an empty clamped range matches nothing.
  constexpr int64_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int32_t>::max();
  if (lo > kMax || hi < kMin || lo > hi) return 0;
  return Table().range_match_i32(vals, n, static_cast<int32_t>(std::max(lo, kMin)),
                                 static_cast<int32_t>(std::min(hi, kMax)), pos,
                                 out);
}

uint64_t RangeMatchInt64(const int64_t* vals, uint32_t n, int64_t lo,
                         int64_t hi, uint64_t pos, util::BitVector* out) {
  if (lo > hi) return 0;
  return Table().range_match_i64(vals, n, lo, hi, pos, out);
}

uint64_t AnyEqMatchInt32(const int32_t* vals, uint32_t n,
                         const int64_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out) {
  CSTORE_DCHECK(k <= kMaxAnyEqTargets);
  // Targets outside the int32 domain cannot match a stored int32.
  int32_t narrowed[kMaxAnyEqTargets];
  uint32_t kept = 0;
  for (uint32_t t = 0; t < k; ++t) {
    if (targets[t] >= std::numeric_limits<int32_t>::min() &&
        targets[t] <= std::numeric_limits<int32_t>::max()) {
      narrowed[kept++] = static_cast<int32_t>(targets[t]);
    }
  }
  if (kept == 0) return 0;
  return Table().any_eq_i32(vals, n, narrowed, kept, pos, out);
}

uint64_t AnyEqMatchInt64(const int64_t* vals, uint32_t n,
                         const int64_t* targets, uint32_t k, uint64_t pos,
                         util::BitVector* out) {
  CSTORE_DCHECK(k >= 1 && k <= kMaxAnyEqTargets);
  return Table().any_eq_i64(vals, n, targets, k, pos, out);
}

uint64_t StrEqAnyMatch(const char* data, uint32_t n, size_t width,
                       const char* limit, const char* patterns, uint32_t k,
                       uint64_t pos, util::BitVector* out) {
  CSTORE_DCHECK(k >= 1 && k <= kMaxAnyEqTargets && width > 0);
  return Table().str_eq_any(data, n, width, limit, patterns, k, pos, out);
}

void UnpackBitsInt64(const uint64_t* words, uint8_t bits, uint32_t n,
                     int64_t base, int64_t* out) {
  if (bits == 0) {
    std::fill(out, out + n, base);
    return;
  }
  Table().unpack_bits_i64(words, bits, n, base, out);
}

void WidenInt32(const int32_t* in, uint32_t n, int64_t* out) {
  Table().widen_i32(in, n, out);
}

void GatherInt32(const int32_t* vals, const uint32_t* idx, uint32_t k,
                 int64_t* out) {
  Table().gather_i32(vals, idx, k, out);
}

void GatherInt64(const int64_t* vals, const uint32_t* idx, uint32_t k,
                 int64_t* out) {
  Table().gather_i64(vals, idx, k, out);
}

}  // namespace cstore::simd
