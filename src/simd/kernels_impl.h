// ISA-generic kernel bodies, written once against the simd::Vec wrapper.
//
// Each per-ISA translation unit instantiates Kernels<Vec> with its own Vec
// specializations (vec_avx2.h / vec_neon.h / vec_scalar.h). The bodies never
// branch on the ISA: lane width, lane masks, and movemask come from the
// wrapper, and the scalar tail loops are the reference semantics every
// instantiation must reproduce bit for bit.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/macros.h"
#include "util/bit_vector.h"

namespace cstore::simd::detail {

/// Accumulates per-chunk match bits into 64-bit mask words and ORs each
/// completed word into the bitmap at consecutive positions — two word ORs
/// per 64 values instead of a read-modify-write per bit.
struct MaskSink {
  util::BitVector* out;
  uint64_t pos;  ///< bit position the next flushed word starts at
  uint64_t word = 0;
  uint32_t fill = 0;
  uint64_t matches = 0;

  /// Appends the low `count` bits of `bits` (count <= 32; higher bits of
  /// `bits` must be zero).
  void Push(uint32_t bits, uint32_t count) {
    matches += static_cast<uint32_t>(__builtin_popcount(bits));
    word |= static_cast<uint64_t>(bits) << fill;
    const uint32_t total = fill + count;
    if (total >= 64) {
      out->OrMask(pos, word);
      pos += 64;
      word = fill == 0 ? 0 : static_cast<uint64_t>(bits) >> (64 - fill);
      fill = total - 64;
    } else {
      fill = total;
    }
  }

  void Flush() {
    if (fill != 0) {
      out->OrMask(pos, word);
      pos += fill;
      word = 0;
      fill = 0;
    }
  }
};

/// Extracts the i-th `bits`-wide group from packed words (little-endian bit
/// order within each word). The scalar reference for UnpackBitsInt64.
inline uint64_t UnpackOne(const uint64_t* words, uint8_t bits, uint32_t i) {
  const uint64_t bit_pos = static_cast<uint64_t>(i) * bits;
  const uint64_t word = bit_pos >> 6;
  const uint32_t offset = static_cast<uint32_t>(bit_pos & 63);
  uint64_t v = words[word] >> offset;
  if (offset + bits > 64) {
    v |= words[word + 1] << (64 - offset);
  }
  const uint64_t mask = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
  return v & mask;
}

inline void ScalarUnpackBitsInt64(const uint64_t* words, uint8_t bits,
                                  uint32_t n, int64_t base, int64_t* out) {
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = base + static_cast<int64_t>(UnpackOne(words, bits, i));
  }
}

inline void ScalarWidenInt32(const int32_t* in, uint32_t n, int64_t* out) {
  for (uint32_t i = 0; i < n; ++i) out[i] = in[i];
}

/// Length of the contiguous position run starting at idx[j] (idx strictly
/// increasing, so idx[j + r] == idx[j] + r detects it in O(1) per probe).
inline uint32_t RunLength(const uint32_t* idx, uint32_t j, uint32_t k) {
  uint32_t r = 1;
  while (j + r < k && idx[j + r] == idx[j] + r) ++r;
  return r;
}

inline void ScalarGatherInt32(const int32_t* vals, const uint32_t* idx,
                              uint32_t k, int64_t* out) {
  uint32_t j = 0;
  while (j < k) {
    const uint32_t r = RunLength(idx, j, k);
    if (r >= 4) {
      ScalarWidenInt32(vals + idx[j], r, out + j);
    } else {
      for (uint32_t t = 0; t < r; ++t) out[j + t] = vals[idx[j + t]];
    }
    j += r;
  }
}

inline void ScalarGatherInt64(const int64_t* vals, const uint32_t* idx,
                              uint32_t k, int64_t* out) {
  uint32_t j = 0;
  while (j < k) {
    const uint32_t r = RunLength(idx, j, k);
    if (r >= 4) {
      std::memcpy(out + j, vals + idx[j], static_cast<size_t>(r) * 8);
    } else {
      for (uint32_t t = 0; t < r; ++t) out[j + t] = vals[idx[j + t]];
    }
    j += r;
  }
}

/// The compare -> bitmap kernel family, parameterized on a Vec wrapper.
template <template <typename> class V>
struct Kernels {
  template <typename T>
  static uint64_t RangeMatch(const T* vals, uint32_t n, T lo, T hi,
                             uint64_t pos, util::BitVector* out) {
    using Vt = V<T>;
    MaskSink sink{out, pos};
    const Vt vlo = Vt::Broadcast(lo);
    const Vt vhi = Vt::Broadcast(hi);
    uint32_t i = 0;
    for (; i + Vt::kLanes <= n; i += Vt::kLanes) {
      const Vt v = Vt::LoadU(vals + i);
      // In range <=> neither lo > v nor v > hi; compare for the misses and
      // invert the movemask (one cmp pair per vector, no >= emulation).
      const Vt miss = Or(CmpGt(vlo, v), CmpGt(v, vhi));
      sink.Push(~Vt::MoveMask(miss) & Vt::kLaneMask, Vt::kLanes);
    }
    for (; i < n; ++i) {
      sink.Push(vals[i] >= lo && vals[i] <= hi ? 1u : 0u, 1);
    }
    sink.Flush();
    return sink.matches;
  }

  template <typename T>
  static uint64_t AnyEqMatch(const T* vals, uint32_t n, const T* targets,
                             uint32_t k, uint64_t pos, util::BitVector* out) {
    using Vt = V<T>;
    CSTORE_DCHECK(k >= 1 && k <= 16);
    Vt vt[16];
    for (uint32_t t = 0; t < k; ++t) vt[t] = Vt::Broadcast(targets[t]);
    MaskSink sink{out, pos};
    uint32_t i = 0;
    for (; i + Vt::kLanes <= n; i += Vt::kLanes) {
      const Vt v = Vt::LoadU(vals + i);
      Vt acc = CmpEq(v, vt[0]);
      for (uint32_t t = 1; t < k; ++t) acc = Or(acc, CmpEq(v, vt[t]));
      sink.Push(Vt::MoveMask(acc) & Vt::kLaneMask, Vt::kLanes);
    }
    for (; i < n; ++i) {
      uint32_t hit = 0;
      for (uint32_t t = 0; t < k; ++t) {
        if (vals[i] == targets[t]) {
          hit = 1;
          break;
        }
      }
      sink.Push(hit, 1);
    }
    sink.Flush();
    return sink.matches;
  }

  /// Fixed-width char equality-any (see simd.h for the buffer contracts).
  /// When the value width fits one uint8 vector, each value is compared with
  /// one vector cmp + movemask; otherwise (and for values too close to
  /// `limit` for a full-lane load) the comparison falls back to memcmp.
  static uint64_t StrEqAnyMatch(const char* data, uint32_t n, size_t width,
                                const char* limit, const char* patterns,
                                uint32_t k, uint64_t pos,
                                util::BitVector* out) {
    using V8 = V<uint8_t>;
    MaskSink sink{out, pos};
    const uint32_t wmask = width >= 32 ? 0xffffffffu
                                       : ((1u << width) - 1) & V8::kLaneMask;
    const bool vector_width = V8::kLanes > 1 && width <= V8::kLanes;
    V8 vpat[16];
    if (vector_width) {
      for (uint32_t t = 0; t < k; ++t) {
        // Reads kLanes bytes from a width-byte slot: the pattern buffer
        // carries trailing slack (simd.h contract), and lanes beyond the
        // width are masked out of the compare below.
        vpat[t] = V8::LoadU(
            reinterpret_cast<const uint8_t*>(patterns + t * width));
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      const char* val = data + static_cast<size_t>(i) * width;
      uint32_t hit = 0;
      if (vector_width && val + V8::kLanes <= limit) {
        const V8 v = V8::LoadU(reinterpret_cast<const uint8_t*>(val));
        for (uint32_t t = 0; t < k; ++t) {
          if ((V8::MoveMask(CmpEq(v, vpat[t])) & wmask) == wmask) {
            hit = 1;
            break;
          }
        }
      } else {
        for (uint32_t t = 0; t < k; ++t) {
          if (std::memcmp(val, patterns + t * width, width) == 0) {
            hit = 1;
            break;
          }
        }
      }
      sink.Push(hit, 1);
    }
    sink.Flush();
    return sink.matches;
  }
};

}  // namespace cstore::simd::detail
