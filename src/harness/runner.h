// Benchmark harness: times (configuration x query) cells and renders the
// paper-style tables (one row per system, one column per query, AVG last).
//
// Measurement protocol follows §6: a warm-up run (warm buffer pool), then
// the average of `repetitions` timed runs. Telemetry comes from the
// per-query QueryStats each run returns (engine::Session::Run, or a direct
// executor call with an ExecContext) — the old pattern of diffing
// process-global counters around a cell is gone; it misattributed work the
// moment runs overlapped.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/exec_context.h"

namespace cstore::harness {

/// Timing + telemetry for one cell (averaged over the timed repetitions).
struct CellResult {
  double seconds = 0;
  uint64_t pages_read = 0;
  /// QueryResult::Hash() of the cell's answer (0 = not recorded). Written
  /// to the results JSON so CI hard-fails on answer drift — e.g. a parallel
  /// series whose hash differs from its serial twin — while timing diffs
  /// stay soft.
  uint64_t result_hash = 0;
  /// Zone-map telemetry (from the per-query stats; zero for designs whose
  /// plans consult no zone maps).
  uint64_t pages_skipped = 0;
  uint64_t pages_all_match = 0;
  uint64_t pages_scanned = 0;
  /// Values the scans evaluated predicates against (sorted-page binary
  /// search makes this smaller than the data scanned).
  uint64_t values_scanned = 0;
  /// Values materialized by position-list gathers (late materialization).
  uint64_t values_gathered = 0;
  /// Unified values-examined figure: scans + gathers + aggregation feeds +
  /// delta-overlay rows, in one number (QueryStats::values_examined).
  uint64_t values_examined = 0;
  /// Time this cell's runs spent blocked at an engine admission gate.
  double admission_wait_seconds = 0;
};

/// One experiment row: a named configuration measured over the 13 queries.
struct SeriesResult {
  std::string name;
  std::map<std::string, CellResult> by_query;  // query id -> result

  double AverageSeconds() const;
};

/// Runs `fn` once for warm-up and `repetitions` times for timing. `fn`
/// returns the per-query stats of one execution (engine::QueryOutcome's
/// stats, or ExecContext::Stats() from a direct run; return {} when there
/// is nothing to report); the cell averages them. Wall time is measured
/// here, around the timed runs.
CellResult TimeCell(const std::function<core::QueryStats()>& fn,
                    int repetitions);

/// Prints a figure-style table: one row per series, columns = query ids +
/// AVG. `unit_scale` converts seconds (e.g. 1000 for ms).
void PrintFigure(const std::string& title,
                 const std::vector<std::string>& query_ids,
                 const std::vector<SeriesResult>& series, bool show_io = false);

/// Prints per-query speedups of `parallel` over `base` (base.seconds /
/// parallel.seconds), plus the average-of-averages ratio. Used by the
/// figure benches to report how their morsel-driven series scale.
void PrintSpeedups(const std::string& title,
                   const std::vector<std::string>& query_ids,
                   const SeriesResult& base, const SeriesResult& parallel);

/// Parses "--sf <double>", "--reps <int>", "--pool <pages>",
/// "--pool-mb <MB>" (same knob in megabytes), "--disk <MB/s>",
/// "--threads <n>", "--clients <m>", "--admit <n>", "--writers <n>",
/// "--shards <n>", "--json <path>" flags (very small helper).
struct BenchArgs {
  double scale_factor = 0.1;
  int repetitions = 1;
  /// Worker count for the parallel ("-pN") series; 0 = hardware threads.
  unsigned threads = 0;
  /// Concurrent client threads for the throughput bench.
  unsigned clients = 8;
  /// Admission cap for the throughput bench (engine
  /// max_inflight_queries); 0 = unlimited.
  unsigned admit = 0;
  /// Concurrent writer threads for the throughput bench's mixed
  /// read/write volley; 0 = read-only (no writeable store built).
  unsigned writers = 0;
  /// Buffer-pool pages per database. Deliberately smaller than a query's
  /// working set (the paper: "the amount of data read by each query exceeds
  /// the size of the buffer pool"), so warm runs still pay device reads.
  /// 192 pages = 6 MB: at the default SF 0.1 this holds a compressed
  /// query's columns but not an uncompressed query's, mirroring the paper's
  /// pool:data ratio (500 MB pool vs ~6 GB lineorder at SF 10).
  size_t pool_pages = 192;
  /// Simulated disk bandwidth in MB/s (the paper's array: 160-200 MB/s).
  /// 0 disables the disk model.
  double disk_mbps = 200.0;
  /// Partition count for the sharded series of the scale bench (the
  /// one-shard reference series always runs as well); clamped to SSB's
  /// seven orderdate years by the sharded store.
  unsigned shards = 4;
  /// When non-empty, the bench writes its per-query results here as JSON.
  std::string json_path;
  static BenchArgs Parse(int argc, char** argv);
};

/// Writes one benchmark's per-query timings (and the zone-map/I/O counters)
/// as JSON, for CI artifact upload and regression diffing against a
/// committed baseline (bench/check_bench_regression.py).
void WriteResultsJson(const std::string& path, const std::string& benchmark,
                      const BenchArgs& args,
                      const std::vector<std::string>& query_ids,
                      const std::vector<SeriesResult>& series);

}  // namespace cstore::harness
