#include "harness/runner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "storage/page.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace cstore::harness {

double SeriesResult::AverageSeconds() const {
  if (by_query.empty()) return 0;
  double total = 0;
  for (const auto& [id, cell] : by_query) total += cell.seconds;
  return total / static_cast<double>(by_query.size());
}

CellResult TimeCell(const std::function<core::QueryStats()>& fn,
                    int repetitions) {
  fn();  // warm-up (warm buffer pool, as in the paper's protocol)
  CellResult cell;
  core::QueryStats total;
  util::Stopwatch watch;
  for (int r = 0; r < repetitions; ++r) total += fn();
  cell.seconds = watch.ElapsedSeconds() / repetitions;
  const auto reps = static_cast<uint64_t>(repetitions);
  cell.pages_read = total.pages_read / reps;
  cell.pages_skipped = total.pages_skipped / reps;
  cell.pages_all_match = total.pages_all_match / reps;
  cell.pages_scanned = total.pages_scanned / reps;
  cell.values_scanned = total.values_scanned / reps;
  cell.values_gathered = total.values_gathered / reps;
  cell.values_examined = total.values_examined / reps;
  cell.admission_wait_seconds = total.admission_wait_seconds / repetitions;
  return cell;
}

void PrintFigure(const std::string& title,
                 const std::vector<std::string>& query_ids,
                 const std::vector<SeriesResult>& series, bool show_io) {
  util::TablePrinter printer(title);
  std::vector<std::string> header = {"config"};
  for (const auto& id : query_ids) header.push_back(id);
  header.push_back("AVG");
  printer.SetHeader(header);
  for (const SeriesResult& s : series) {
    std::vector<std::string> row = {s.name};
    for (const auto& id : query_ids) {
      auto it = s.by_query.find(id);
      row.push_back(it == s.by_query.end()
                        ? "-"
                        : util::TablePrinter::Num(it->second.seconds * 1e3, 1));
    }
    row.push_back(util::TablePrinter::Num(s.AverageSeconds() * 1e3, 1));
    printer.AddRow(row);
  }
  printer.Print();
  if (show_io) {
    util::TablePrinter io(title + " — simulated I/O (pages read)");
    io.SetHeader(header);
    for (const SeriesResult& s : series) {
      std::vector<std::string> row = {s.name};
      uint64_t total = 0;
      for (const auto& id : query_ids) {
        auto it = s.by_query.find(id);
        const uint64_t pages =
            it == s.by_query.end() ? 0 : it->second.pages_read;
        total += pages;
        row.push_back(std::to_string(pages));
      }
      row.push_back(std::to_string(query_ids.empty()
                                       ? 0
                                       : total / query_ids.size()));
      io.AddRow(row);
    }
    io.Print();
  }
}

void PrintSpeedups(const std::string& title,
                   const std::vector<std::string>& query_ids,
                   const SeriesResult& base, const SeriesResult& parallel) {
  util::TablePrinter printer(title);
  std::vector<std::string> header = {"speedup"};
  for (const auto& id : query_ids) header.push_back(id);
  header.push_back("AVG");
  printer.SetHeader(header);
  std::vector<std::string> row = {base.name + "/" + parallel.name};
  for (const auto& id : query_ids) {
    auto b = base.by_query.find(id);
    auto p = parallel.by_query.find(id);
    if (b == base.by_query.end() || p == parallel.by_query.end() ||
        p->second.seconds <= 0) {
      row.push_back("-");
      continue;
    }
    row.push_back(
        util::TablePrinter::Num(b->second.seconds / p->second.seconds, 2) +
        "x");
  }
  const double base_avg = base.AverageSeconds();
  const double par_avg = parallel.AverageSeconds();
  row.push_back(par_avg > 0 ? util::TablePrinter::Num(base_avg / par_avg, 2) +
                                  "x"
                            : "-");
  printer.AddRow(row);
  printer.Print();
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  args.threads = util::ThreadPool::HardwareThreads();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sf") == 0 && i + 1 < argc) {
      args.scale_factor = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      args.repetitions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--pool") == 0 && i + 1 < argc) {
      args.pool_pages = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--pool-mb") == 0 && i + 1 < argc) {
      args.pool_pages = static_cast<size_t>(std::atoll(argv[++i])) *
                        (1024 * 1024 / storage::kPageSize);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      args.shards = static_cast<unsigned>(std::atoi(argv[++i]));
      if (args.shards == 0) args.shards = 1;
    } else if (std::strcmp(argv[i], "--disk") == 0 && i + 1 < argc) {
      args.disk_mbps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::atoi(argv[++i]));
      if (args.threads == 0) args.threads = util::ThreadPool::HardwareThreads();
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      args.clients = static_cast<unsigned>(std::atoi(argv[++i]));
      if (args.clients == 0) args.clients = 1;
    } else if (std::strcmp(argv[i], "--admit") == 0 && i + 1 < argc) {
      args.admit = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--writers") == 0 && i + 1 < argc) {
      args.writers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    }
  }
  return args;
}

void WriteResultsJson(const std::string& path, const std::string& benchmark,
                      const BenchArgs& args,
                      const std::vector<std::string>& query_ids,
                      const std::vector<SeriesResult>& series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WriteResultsJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"%s\",\n", benchmark.c_str());
  std::fprintf(f, "  \"scale_factor\": %g,\n", args.scale_factor);
  std::fprintf(f, "  \"repetitions\": %d,\n", args.repetitions);
  std::fprintf(f, "  \"threads\": %u,\n", args.threads);
  std::fprintf(f, "  \"disk_mbps\": %g,\n", args.disk_mbps);
  std::fprintf(f, "  \"pool_pages\": %zu,\n", args.pool_pages);
  std::fprintf(f, "  \"max_inflight\": %u,\n", args.admit);
  std::fprintf(f, "  \"series\": [\n");
  for (size_t s = 0; s < series.size(); ++s) {
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n", series[s].name.c_str());
    std::fprintf(f, "      \"avg_ms\": %.4f,\n",
                 series[s].AverageSeconds() * 1e3);
    std::fprintf(f, "      \"queries\": {\n");
    bool first = true;
    for (const auto& id : query_ids) {
      auto it = series[s].by_query.find(id);
      if (it == series[s].by_query.end()) continue;
      const CellResult& cell = it->second;
      std::fprintf(f,
                   "%s        \"%s\": {\"ms\": %.4f, \"pages_read\": %llu, "
                   "\"pages_skipped\": %llu, \"pages_all_match\": %llu, "
                   "\"pages_scanned\": %llu, \"values_scanned\": %llu, "
                   "\"values_gathered\": %llu, "
                   "\"values_examined\": %llu, "
                   "\"admission_wait_ms\": %.4f, "
                   "\"result_hash\": \"%016llx\"}",
                   first ? "" : ",\n", id.c_str(), cell.seconds * 1e3,
                   static_cast<unsigned long long>(cell.pages_read),
                   static_cast<unsigned long long>(cell.pages_skipped),
                   static_cast<unsigned long long>(cell.pages_all_match),
                   static_cast<unsigned long long>(cell.pages_scanned),
                   static_cast<unsigned long long>(cell.values_scanned),
                   static_cast<unsigned long long>(cell.values_gathered),
                   static_cast<unsigned long long>(cell.values_examined),
                   cell.admission_wait_seconds * 1e3,
                   static_cast<unsigned long long>(cell.result_hash));
      first = false;
    }
    std::fprintf(f, "\n      }\n    }%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace cstore::harness
