// ThroughputRunner: M concurrent clients firing a query mix at one database.
//
// The figure benches time one query at a time (the paper's protocol); this
// runner measures the serving-many-users regime the ROADMAP targets instead:
// every client is an OS thread looping over the query mix, and the headline
// numbers are queries/sec and pages-read-per-query. Each client records a
// result hash per query id, so callers (and CI) can enforce that concurrency
// never changes an answer — determinism is checked, not hoped for.
//
// The runner is engine-agnostic: it drives a `run_query(client, id)`
// callback and diffs IoStats/clock around the whole volley. The shared-scan
// bench points the callback at ExecuteStarQuery with a per-mode
// ExecConfig::shared_scans manager.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/io_stats.h"

namespace cstore::harness {

struct ThroughputOptions {
  /// Concurrent client threads.
  unsigned clients = 8;
  /// Times each client runs the whole mix.
  int rounds = 1;
  /// Client k starts the mix at offset k (and wraps), so different queries
  /// are in flight at once — the adversarial case for shared infrastructure.
  /// Every client still runs every query `rounds` times.
  bool rotate_mix = true;
};

/// One client's outcome.
struct ClientResult {
  unsigned client = 0;
  double seconds = 0;  ///< this client's wall time for all its queries
  /// Query id -> QueryResult::Hash() (all rounds must agree; the runner
  /// records the first and CHECK-fails if a later round diverges).
  std::map<std::string, uint64_t> result_hashes;
  /// Query id -> mean seconds per execution of that query on this client.
  std::map<std::string, double> query_seconds;
};

struct ThroughputResult {
  double wall_seconds = 0;
  uint64_t queries_run = 0;
  double queries_per_sec = 0;
  uint64_t pages_read = 0;  ///< device pages read during the volley
  double pages_per_query = 0;
  std::vector<ClientResult> clients;
};

/// Runs the volley: `options.clients` threads, each executing the mix
/// `options.rounds` times via `run_query(client, id)` (which returns the
/// query's result hash). `stats` (optional) is diffed around the volley for
/// the pages-read numbers. Blocks until every client finishes.
ThroughputResult RunThroughput(
    const ThroughputOptions& options,
    const std::vector<std::string>& query_ids,
    const std::function<uint64_t(unsigned client, const std::string& id)>&
        run_query,
    const storage::IoStats* stats);

}  // namespace cstore::harness
