// ThroughputRunner: M concurrent clients firing a query mix at one database.
//
// The figure benches time one query at a time (the paper's protocol); this
// runner measures the serving-many-users regime the ROADMAP targets instead:
// every client is an OS thread looping over the query mix, and the headline
// numbers are queries/sec and pages-read-per-query. Each client records a
// result hash per query id, so callers (and CI) can enforce that concurrency
// never changes an answer — determinism is checked, not hoped for.
//
// The runner is engine-agnostic: it drives a `run_query(client, id)`
// callback that returns the query's hash and per-query QueryStats (an
// engine::Session::Run outcome, typically). Aggregates — pages read,
// admission wait — are summed from those per-query stats, so every number
// is attributed to the query that caused it; nothing is diffed from
// process-global counters around the volley.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/exec_context.h"

namespace cstore::harness {

struct ThroughputOptions {
  /// Concurrent client threads.
  unsigned clients = 8;
  /// Times each client runs the whole mix.
  int rounds = 1;
  /// Client k starts the mix at offset k (and wraps), so different queries
  /// are in flight at once — the adversarial case for shared infrastructure.
  /// Every client still runs every query `rounds` times.
  bool rotate_mix = true;
};

/// What one execution of one query reports back to the runner.
struct QueryRun {
  uint64_t result_hash = 0;
  core::QueryStats stats;
};

/// One client's outcome.
struct ClientResult {
  unsigned client = 0;
  double seconds = 0;  ///< this client's wall time for all its queries
  /// Query id -> QueryResult::Hash() (all rounds must agree; the runner
  /// records the first and CHECK-fails if a later round diverges).
  std::map<std::string, uint64_t> result_hashes;
  /// Query id -> mean per-execution stats of that query on this client.
  std::map<std::string, core::QueryStats> query_stats;
};

struct ThroughputResult {
  double wall_seconds = 0;
  uint64_t queries_run = 0;
  double queries_per_sec = 0;
  /// Device pages read during the volley — the sum of every query's own
  /// pages_read, so concurrent clients never pollute each other's numbers.
  uint64_t pages_read = 0;
  double pages_per_query = 0;
  /// Total seconds clients spent blocked at the admission gate.
  double admission_wait_seconds = 0;
  std::vector<ClientResult> clients;
};

/// Runs the volley: `options.clients` threads, each executing the mix
/// `options.rounds` times via `run_query(client, id)`. Blocks until every
/// client finishes.
ThroughputResult RunThroughput(
    const ThroughputOptions& options, const std::vector<std::string>& query_ids,
    const std::function<QueryRun(unsigned client, const std::string& id)>&
        run_query);

}  // namespace cstore::harness
