#include "harness/throughput.h"

#include <thread>

#include "common/macros.h"
#include "util/stopwatch.h"

namespace cstore::harness {

ThroughputResult RunThroughput(
    const ThroughputOptions& options, const std::vector<std::string>& query_ids,
    const std::function<QueryRun(unsigned client, const std::string& id)>&
        run_query) {
  CSTORE_CHECK(options.clients > 0 && options.rounds > 0 &&
               !query_ids.empty());
  ThroughputResult result;
  result.clients.resize(options.clients);

  util::Stopwatch volley;

  // Clients are plain OS threads, not pool workers: they model independent
  // users, and each may itself use the pool via its query's ExecConfig.
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (unsigned c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& mine = result.clients[c];
      mine.client = c;
      util::Stopwatch client_watch;
      const size_t n = query_ids.size();
      const size_t offset = options.rotate_mix ? c % n : 0;
      for (int round = 0; round < options.rounds; ++round) {
        for (size_t i = 0; i < n; ++i) {
          const std::string& id = query_ids[(offset + i) % n];
          const QueryRun run = run_query(c, id);
          mine.query_stats[id] += run.stats;
          auto [it, inserted] = mine.result_hashes.emplace(id, run.result_hash);
          // A client must get the same answer every round, concurrency or
          // not — fail loudly right where it diverges.
          CSTORE_CHECK(inserted || it->second == run.result_hash);
        }
      }
      mine.seconds = client_watch.ElapsedSeconds();
    });
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds = volley.ElapsedSeconds();
  result.queries_run = static_cast<uint64_t>(options.clients) *
                       static_cast<uint64_t>(options.rounds) * query_ids.size();
  result.queries_per_sec =
      result.wall_seconds > 0 ? result.queries_run / result.wall_seconds : 0;
  // Volley aggregates are sums of per-query stats (attributed, not diffed
  // from globals); per-query maps then normalize to means per execution.
  for (ClientResult& client : result.clients) {
    for (auto& [id, stats] : client.query_stats) {
      result.pages_read += stats.pages_read;
      result.admission_wait_seconds += stats.admission_wait_seconds;
      if (options.rounds > 1) {
        const auto rounds = static_cast<uint64_t>(options.rounds);
        stats.seconds /= options.rounds;
        stats.admission_wait_seconds /= options.rounds;
        stats.pages_read /= rounds;
        stats.pages_written /= rounds;
        stats.pages_skipped /= rounds;
        stats.pages_all_match /= rounds;
        stats.pages_scanned /= rounds;
        stats.values_scanned /= rounds;
        stats.pages_gathered /= rounds;
      }
    }
  }
  result.pages_per_query =
      result.queries_run > 0
          ? static_cast<double>(result.pages_read) / result.queries_run
          : 0;
  return result;
}

}  // namespace cstore::harness
