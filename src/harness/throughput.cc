#include "harness/throughput.h"

#include <thread>

#include "common/macros.h"
#include "util/stopwatch.h"

namespace cstore::harness {

ThroughputResult RunThroughput(
    const ThroughputOptions& options,
    const std::vector<std::string>& query_ids,
    const std::function<uint64_t(unsigned client, const std::string& id)>&
        run_query,
    const storage::IoStats* stats) {
  CSTORE_CHECK(options.clients > 0 && options.rounds > 0 &&
               !query_ids.empty());
  ThroughputResult result;
  result.clients.resize(options.clients);

  const storage::IoStats before =
      stats != nullptr ? *stats : storage::IoStats{};
  util::Stopwatch volley;

  // Clients are plain OS threads, not pool workers: they model independent
  // users, and each may itself use the pool via its query's ExecConfig.
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (unsigned c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& mine = result.clients[c];
      mine.client = c;
      util::Stopwatch client_watch;
      const size_t n = query_ids.size();
      const size_t offset = options.rotate_mix ? c % n : 0;
      for (int round = 0; round < options.rounds; ++round) {
        for (size_t i = 0; i < n; ++i) {
          const std::string& id = query_ids[(offset + i) % n];
          util::Stopwatch query_watch;
          const uint64_t hash = run_query(c, id);
          mine.query_seconds[id] += query_watch.ElapsedSeconds();
          auto [it, inserted] = mine.result_hashes.emplace(id, hash);
          // A client must get the same answer every round, concurrency or
          // not — fail loudly right where it diverges.
          CSTORE_CHECK(inserted || it->second == hash);
        }
      }
      for (auto& [id, secs] : mine.query_seconds) {
        secs /= options.rounds;
      }
      mine.seconds = client_watch.ElapsedSeconds();
    });
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds = volley.ElapsedSeconds();
  result.queries_run = static_cast<uint64_t>(options.clients) *
                       static_cast<uint64_t>(options.rounds) * query_ids.size();
  result.queries_per_sec =
      result.wall_seconds > 0 ? result.queries_run / result.wall_seconds : 0;
  if (stats != nullptr) {
    result.pages_read = (*stats - before).pages_read;
  }
  result.pages_per_query =
      result.queries_run > 0
          ? static_cast<double>(result.pages_read) / result.queries_run
          : 0;
  return result;
}

}  // namespace cstore::harness
