// The scale point: partitioned fact storage under a pool much smaller than
// the data, one shard count against the unsharded reference.
//
// The paper measures one machine, one base; the ROADMAP's next regime is
// data that outgrows a single base's working set. This bench builds the
// same SSB database twice through shard::ShardedStore — once with a single
// shard (bit-identical to the monolithic engine::Store) and once with
// --shards N orderdate-year partitions — runs the 13-query SSBM mix plus
// date-constrained probe queries, and reports device pages read per query
// per shard count. The pool (set with --pool or --pool-mb, split across
// shards) is deliberately much smaller than the generated data, so every
// run pays real device reads: the out-of-core regime where partition
// pruning is visible as I/O that never happens. Sweep --sf (and --shards)
// across invocations for the scale series; each run emits one JSON.
//
// Two hard gates, mirrored by bench/check_bench_regression.py on the
// emitted JSON (series "cs-s1" vs "cs-s<N>"):
//   * every query's result hash at N shards must equal the 1-shard hash
//     (scatter-gather must be bit-identical to unsharded execution);
//   * pruned shards must bill zero device pages (checked from the
//     per-shard receipts in QueryOutcome::shard_bills).
//
// Probe queries (fact-side orderdate ranges the manifest can prune on):
//   S93    SUM(revenue) by year, orderdate within 1993
//   S9495  SUM(revenue) by year, orderdate within 1994-1995
//
// The receipts run each probe cold on both the column store and the
// traditional row store. Expect the reduction to be dramatic on "T" (heap
// scans have no zone maps — pruning is all that stands between a one-year
// probe and a full-table scan) and near zero on "CS": lineorder is sorted
// by orderdate, so the column store's page zone maps already skip
// out-of-range pages without I/O. Partitioning buys the row store what
// sort order already buys the column store — the paper's asymmetry, at the
// I/O layer.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "harness/runner.h"
#include "shard/scatter.h"
#include "shard/sharded_store.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

namespace {

plan::Plan YearProbe(const std::string& id, int64_t lo_year, int64_t hi_year) {
  return plan::PlanBuilder(id)
      .Scan("lineorder")
      .Join("date", "orderdate", "datekey")
      .Where(plan::Predicate::IntRange("lineorder", "orderdate",
                                       lo_year * 10000 + 101,
                                       hi_year * 10000 + 1231))
      .GroupBy("date", "year")
      .Sum("lineorder", "revenue")
      .Build();
}

struct ShardCountRun {
  harness::SeriesResult series;
  /// "design:probe" -> device pages billed by surviving (unpruned) shards
  /// on a cold pool.
  std::map<std::string, uint64_t> probe_pages;
  /// "design:probe" -> shards the manifest pruned.
  std::map<std::string, size_t> probe_pruned;
};

/// Drops every shard's page cache, so the next run pays cold device reads —
/// the receipts below measure I/O pruning avoided, not cache luck.
void ClearPools(shard::ShardedStore* store) {
  shard::ShardedStore::Pinned pin = store->Pin();
  for (const shard::ShardedStore::ShardPin& shard : pin.shards) {
    if (shard.version->column_db != nullptr) {
      CSTORE_CHECK(shard.version->column_db->pool().Clear().ok());
    }
    if (shard.version->row_db != nullptr) {
      CSTORE_CHECK(shard.version->row_db->pool().Clear().ok());
    }
  }
}

ShardCountRun RunAtShardCount(const harness::BenchArgs& args,
                              const ssb::SsbData& data, unsigned num_shards,
                              const std::vector<plan::Plan>& queries,
                              const std::vector<std::string>& probe_ids) {
  shard::ShardedStore::Options options;
  options.num_shards = num_shards;
  options.store.build_column = true;
  // The row store too: its heap scans have no zone maps, so it is the
  // design where partition pruning (and nothing else) stands between a
  // one-year probe and a full-table scan.
  options.store.build_rows = true;
  // Uncompressed: fact scans actually walk their pages (compressed flight
  // scans are mostly zone-map skips), so a pool smaller than the data pays
  // visible device reads — the regime pruning exists for.
  options.store.compression = col::CompressionMode::kNone;
  // One pool budget for the whole table, however it is partitioned: each
  // shard gets an equal slice (floor of 16 frames so tiny slices still run).
  options.store.pool_pages =
      std::max<size_t>(16, args.pool_pages / std::max(1u, num_shards));
  auto store = shard::ShardedStore::Open(data, options).ValueOrDie();

  const shard::Manifest manifest = store->manifest();
  uint64_t total_bytes = 0;
  for (const shard::ShardInfo& info : manifest.shards) {
    total_bytes += info.base_bytes;
  }
  std::fprintf(stderr,
               "  s%u built: %zu shard(s), %.1f MB logical, pool %zu pages "
               "(%.1f MB) per shard\n",
               num_shards, manifest.shards.size(),
               static_cast<double>(total_bytes) / (1024.0 * 1024.0),
               options.store.pool_pages,
               static_cast<double>(options.store.pool_pages) *
                   storage::kPageSize / (1024.0 * 1024.0));
  std::printf("manifest s%u: %s\n", num_shards, manifest.ToJson().c_str());

  engine::Engine engine;
  shard::RegisterShardedDesigns(&engine, store.get());
  auto session = engine.OpenSession("CS");
  session->config() = core::ExecConfig::AllOn();
  session->config().num_threads = args.threads;

  ShardCountRun run;
  run.series.name = "cs-s" + std::to_string(num_shards);
  for (const plan::Plan& q : queries) {
    uint64_t result_hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto outcome = session->Run(q);
          CSTORE_CHECK(outcome.ok());
          result_hash = outcome.ValueOrDie().result.Hash();
          return outcome.ValueOrDie().stats;
        },
        args.repetitions);
    cell.result_hash = result_hash;
    run.series.by_query[q.id()] = cell;
  }

  // Pruning receipts: each probe once per design on a cold cache, auditing
  // the per-shard bills. A pruned shard billing any device page is a bug,
  // not a slow run.
  for (const std::string& design : {std::string("CS"), std::string("T")}) {
    auto probe_session = engine.OpenSession(design);
    probe_session->config() = core::ExecConfig::AllOn();
    probe_session->config().num_threads = args.threads;
    for (const std::string& id : probe_ids) {
      const plan::Plan* probe = nullptr;
      for (const plan::Plan& q : queries) {
        if (q.id() == id) probe = &q;
      }
      CSTORE_CHECK(probe != nullptr);
      ClearPools(store.get());
      auto outcome = probe_session->Run(*probe);
      CSTORE_CHECK(outcome.ok());
      uint64_t survivor_pages = 0;
      size_t pruned = 0;
      for (const core::ShardBill& bill : outcome.ValueOrDie().shard_bills) {
        if (bill.pruned) {
          ++pruned;
          if (bill.stats.pages_read != 0) {
            std::fprintf(
                stderr,
                "FATAL: %s s%u probe %s: pruned shard %u billed %llu "
                "device pages\n",
                design.c_str(), num_shards, id.c_str(), bill.shard,
                static_cast<unsigned long long>(bill.stats.pages_read));
            std::abort();
          }
        } else {
          survivor_pages += bill.stats.pages_read;
        }
      }
      run.probe_pages[design + ":" + id] = survivor_pages;
      run.probe_pruned[design + ":" + id] = pruned;
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Scale — SSBM mix + orderdate probes over partitioned fact storage, "
      "SF=%.3g, pool=%zu pages (%.1f MB) total, shards={1,%u}, %u thread(s), "
      "%d rep(s)\n",
      args.scale_factor, args.pool_pages,
      static_cast<double>(args.pool_pages) * storage::kPageSize /
          (1024.0 * 1024.0),
      args.shards, args.threads, args.repetitions);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  std::vector<plan::Plan> queries = ssb::AllQueries();
  queries.push_back(YearProbe("S93", 1993, 1993));
  queries.push_back(YearProbe("S9495", 1994, 1995));
  const std::vector<std::string> probe_ids = {"S93", "S9495"};
  std::vector<std::string> ids;
  for (const plan::Plan& q : queries) ids.push_back(q.id());

  const ShardCountRun s1 =
      RunAtShardCount(args, data, 1, queries, probe_ids);
  const ShardCountRun sn =
      RunAtShardCount(args, data, args.shards, queries, probe_ids);

  // Hard gate, in-process: N-shard scatter-gather must answer every query
  // bit-identically to the single shard.
  for (const std::string& id : ids) {
    const uint64_t h1 = s1.series.by_query.at(id).result_hash;
    const uint64_t hn = sn.series.by_query.at(id).result_hash;
    if (h1 != hn) {
      std::fprintf(stderr,
                   "FATAL: query %s: s%u hash %016llx != s1 hash %016llx\n",
                   id.c_str(), args.shards,
                   static_cast<unsigned long long>(hn),
                   static_cast<unsigned long long>(h1));
      std::abort();
    }
  }
  std::printf("hash gate: %zu queries bit-identical at 1 and %u shard(s)\n",
              ids.size(), args.shards);

  harness::PrintFigure("Scale: time per query (ms)", ids,
                       {s1.series, sn.series}, /*show_io=*/true);

  std::printf(
      "\npruning (cold-cache device pages read by surviving shards):\n");
  std::printf("%-10s %14s %14s %18s\n", "probe", "s1 pages",
              ("s" + std::to_string(args.shards) + " pages").c_str(),
              "shards pruned");
  bool pruning_reduced = false;
  for (const std::string& design : {std::string("CS"), std::string("T")}) {
    for (const std::string& id : probe_ids) {
      const std::string key = design + ":" + id;
      const uint64_t p1 = s1.probe_pages.at(key);
      const uint64_t pn = sn.probe_pages.at(key);
      if (pn < p1) pruning_reduced = true;
      std::printf("%-10s %14llu %14llu %11zu of %-4u\n", key.c_str(),
                  static_cast<unsigned long long>(p1),
                  static_cast<unsigned long long>(pn),
                  sn.probe_pruned.at(key), args.shards);
    }
  }
  if (!pruning_reduced) {
    std::printf(
        "WARNING: pruning did not reduce device pages on any probe — pool "
        "not smaller than the data at this SF?\n");
  }

  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "fig_scale", args, ids,
                              {s1.series, sn.series});
  }
  return 0;
}
