// §6.2 in-text size analysis: tuple overheads across physical designs.
//
// The paper reports (at SF 10): a single two-column vertical partition of
// lineorder takes 0.7-1.1 GB (~16 bytes/row of value + record-id + header);
// the whole 17-column traditional table ~4 GB compressed / 6 GB raw; one
// C-Store integer column just 240 MB (4 bytes/row) and the compressed
// C-Store table 2.3 GB, with the sorted orderdate column under 64 KB after
// RLE. This bench reproduces the per-row accounting at the chosen SF.
#include <cstdio>

#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "util/table_printer.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Storage size analysis (SF=%.3g, %s rows in lineorder)\n",
              args.scale_factor,
              std::to_string(ssb::CardinalitiesFor(args.scale_factor).lineorders)
                  .c_str());

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);
  const double rows = static_cast<double>(data.lineorder.size());

  ssb::RowDbOptions options;
  options.vertical_partitions = true;
  options.all_indexes = true;
  auto row_db = ssb::RowDatabase::Build(data, options).ValueOrDie();
  auto cs_full =
      ssb::ColumnDatabase::Build(data, col::CompressionMode::kFull).ValueOrDie();
  auto cs_none =
      ssb::ColumnDatabase::Build(data, col::CompressionMode::kNone).ValueOrDie();

  util::TablePrinter t("Per-design lineorder storage");
  t.SetHeader({"design", "MB", "bytes/row"});
  auto add = [&](const std::string& name, uint64_t bytes) {
    t.AddRow({name, util::TablePrinter::Num(bytes / 1e6, 1),
              util::TablePrinter::Num(bytes / rows, 1)});
  };
  add("row-store traditional (17 cols)", row_db->lineorder().SizeBytes());
  uint64_t vp_total = 0;
  for (const std::string& name :
       {"orderdate", "custkey", "suppkey", "partkey", "quantity", "discount",
        "extendedprice", "revenue", "supplycost"}) {
    vp_total += row_db->vp(name).SizeBytes();
  }
  add("row-store VP (9 query columns)", vp_total);
  add("  single VP column (custkey)", row_db->vp("custkey").SizeBytes());
  uint64_t idx_total = 0;
  for (const std::string& name : ssb::QueryFactColumns()) {
    idx_total += row_db->fact_index(name).SizeBytes();
  }
  add("row-store B+Trees (query columns)", idx_total);
  add("column-store uncompressed", cs_none->lineorder().SizeBytes());
  add("  single column (custkey, plain)",
      cs_none->lineorder().column("custkey").SizeBytes());
  add("column-store compressed", cs_full->lineorder().SizeBytes());
  add("  single column (custkey)",
      cs_full->lineorder().column("custkey").SizeBytes());
  add("  sorted column (orderdate, RLE)",
      cs_full->lineorder().column("orderdate").SizeBytes());
  t.Print();

  std::printf(
      "\nPaper's claims to check (§6.2): VP column ~16 B/row vs C-Store "
      "~4 B/row;\nscanning 4 VP columns ~ scanning the whole traditional "
      "table; RLE'd orderdate\ncolumn tiny (paper: <64 KB at SF 10).\n");
  std::printf("VP bytes/row over C-Store plain bytes/row (custkey): %.1fx\n",
              static_cast<double>(row_db->vp("custkey").SizeBytes()) /
                  cs_none->lineorder().column("custkey").SizeBytes());
  return 0;
}
