// Figure 8: invisible join vs a pre-joined (denormalized) fact table
// (§6.3.3).
//
//   Base       normal schema, invisible join (= Figure 5's "CS")
//   PJ, No C   denormalized, dimension strings stored uncompressed
//   PJ, Int C  denormalized, dimension attributes dictionary-coded to ints
//   PJ, Max C  denormalized, aggressive compression everywhere
//
// Paper shape: "PJ, No C" ~5x worse than Base (string predicates); "Int C"
// close to Base but usually still behind; "Max C" can beat Base.
#include <cstdio>
#include <memory>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 8 — denormalization study, SF=%.3g (ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto base = ssb::ColumnDatabase::Build(data, col::CompressionMode::kFull,
                                         args.pool_pages)
                  .ValueOrDie();
  auto pj_none = ssb::DenormalizedDatabase::Build(
                     data, col::CompressionMode::kNone, args.pool_pages)
                     .ValueOrDie();
  auto pj_int = ssb::DenormalizedDatabase::Build(
                    data, col::CompressionMode::kDictOnly, args.pool_pages)
                    .ValueOrDie();
  auto pj_max = ssb::DenormalizedDatabase::Build(
                    data, col::CompressionMode::kFull, args.pool_pages)
                    .ValueOrDie();
  base->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_none->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_int->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_max->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  // Single-threaded throughout: this figure reproduces the paper's
  // single-core comparison of storage layouts, not the parallel scaling.
  core::ExecConfig serial = core::ExecConfig::AllOn();
  serial.num_threads = 1;

  // The pre-joined variants are engine designs like everything else: star
  // queries go in, the design rewrites them onto its denormalized table.
  engine::EngineOptions engine_options;
  engine_options.default_config = serial;
  engine::Engine engine(engine_options);
  engine.Register("Base", engine::MakeColumnStoreDesign(base->Schema()));
  engine.Register("PJ, No C", engine::MakeDenormalizedDesign(pj_none.get()));
  engine.Register("PJ, Int C", engine::MakeDenormalizedDesign(pj_int.get()));
  engine.Register("PJ, Max C", engine::MakeDenormalizedDesign(pj_max.get()));

  const char* names[] = {"Base", "PJ, No C", "PJ, Int C", "PJ, Max C"};
  std::vector<harness::SeriesResult> series(4);
  std::vector<std::unique_ptr<engine::Session>> sessions;
  for (int i = 0; i < 4; ++i) {
    series[i].name = names[i];
    sessions.push_back(engine.OpenSession(names[i]));
  }

  for (const plan::Plan& q : ssb::AllQueries()) {
    for (int i = 0; i < 4; ++i) {
      series[i].by_query[q.id()] = harness::TimeCell(
          [&] {
            auto outcome = sessions[i]->Run(q);
            CSTORE_CHECK(outcome.ok());
            return outcome.ValueOrDie().stats;
          },
          args.repetitions);
    }
    std::fprintf(stderr, "  Q%s done\n", q.id().c_str());
  }

  harness::PrintFigure("Figure 8 — denormalization (ms)", ids, series);
  std::printf("\nStorage: base lineorder = %.1f MB, PJ No C = %.1f MB, "
              "PJ Int C = %.1f MB, PJ Max C = %.1f MB\n",
              base->lineorder().SizeBytes() / 1e6, pj_none->SizeBytes() / 1e6,
              pj_int->SizeBytes() / 1e6, pj_max->SizeBytes() / 1e6);
  return 0;
}
