// Figure 8: invisible join vs a pre-joined (denormalized) fact table
// (§6.3.3).
//
//   Base       normal schema, invisible join (= Figure 5's "CS")
//   PJ, No C   denormalized, dimension strings stored uncompressed
//   PJ, Int C  denormalized, dimension attributes dictionary-coded to ints
//   PJ, Max C  denormalized, aggressive compression everywhere
//
// Paper shape: "PJ, No C" ~5x worse than Base (string predicates); "Int C"
// close to Base but usually still behind; "Max C" can beat Base.
#include <cstdio>

#include "core/star_executor.h"
#include "core/table_executor.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 8 — denormalization study, SF=%.3g (ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto base = ssb::ColumnDatabase::Build(data, col::CompressionMode::kFull,
                                         args.pool_pages)
                  .ValueOrDie();
  auto pj_none = ssb::DenormalizedDatabase::Build(
                     data, col::CompressionMode::kNone, args.pool_pages)
                     .ValueOrDie();
  auto pj_int = ssb::DenormalizedDatabase::Build(
                    data, col::CompressionMode::kDictOnly, args.pool_pages)
                    .ValueOrDie();
  auto pj_max = ssb::DenormalizedDatabase::Build(
                    data, col::CompressionMode::kFull, args.pool_pages)
                    .ValueOrDie();
  base->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_none->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_int->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  pj_max->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  std::vector<harness::SeriesResult> series(4);
  series[0].name = "Base";
  series[1].name = "PJ, No C";
  series[2].name = "PJ, Int C";
  series[3].name = "PJ, Max C";

  // Single-threaded throughout: this figure reproduces the paper's
  // single-core comparison of storage layouts, not the parallel scaling.
  core::ExecConfig serial = core::ExecConfig::AllOn();
  serial.num_threads = 1;

  for (const core::StarQuery& q : ssb::AllQueries()) {
    const core::TableQuery tq = ssb::ToDenormalizedQuery(q);
    series[0].by_query[q.id] = harness::TimeCell(
        [&] {
          auto r = core::ExecuteStarQuery(base->Schema(), q, serial);
          CSTORE_CHECK(r.ok());
        },
        args.repetitions, nullptr);
    auto run_pj = [&](ssb::DenormalizedDatabase* db) {
      return harness::TimeCell(
          [&] {
            auto r = core::ExecuteTableQuery(db->table(), tq, serial);
            CSTORE_CHECK(r.ok());
          },
          args.repetitions, nullptr);
    };
    series[1].by_query[q.id] = run_pj(pj_none.get());
    series[2].by_query[q.id] = run_pj(pj_int.get());
    series[3].by_query[q.id] = run_pj(pj_max.get());
    std::fprintf(stderr, "  Q%s done\n", q.id.c_str());
  }

  harness::PrintFigure("Figure 8 — denormalization (ms)", ids, series);
  std::printf("\nStorage: base lineorder = %.1f MB, PJ No C = %.1f MB, "
              "PJ Int C = %.1f MB, PJ Max C = %.1f MB\n",
              base->lineorder().SizeBytes() / 1e6, pj_none->SizeBytes() / 1e6,
              pj_int->SizeBytes() / 1e6, pj_max->SizeBytes() / 1e6);
  return 0;
}
