// Throughput under concurrent clients: private scans vs cooperative shared
// scans (ExecConfig::shared_scans).
//
// The paper times one query at a time; this bench measures the regime the
// ROADMAP's "millions of users" goal cares about: M client threads firing
// the 13-query SSBM mix at one database, with a buffer pool deliberately
// smaller than the working set (the paper's pool:data ratio) and the
// simulated disk charging every miss. Private scans multiply pool pressure
// by M — every client drags its own miss stream from page 0. With shared
// scans each query attaches to the in-flight scan of its column, trails the
// hot pages, and wraps around, so concurrent clients share fetches.
//
// The database is uncompressed (kNone): fact scans there actually walk
// their pages (compressed flight-1 scans are mostly zone-map skips), which
// is the I/O-bound case shared scans exist for.
//
// Determinism is enforced, not hoped for: every client's per-query result
// hash is CHECKed against the serial single-client answer in-process, and
// --json emits per-client series (<mode>-c<M>-client<k>) so
// bench/check_bench_regression.py hard-fails CI on any divergence.
#include <cstdio>
#include <string>
#include <vector>

#include "core/shared_scan.h"
#include "core/star_executor.h"
#include "harness/runner.h"
#include "harness/throughput.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Throughput — %u concurrent clients over the SSBM mix, SF=%.3g, "
      "pool=%zu pages, disk=%g MB/s, %d round(s)/client\n",
      args.clients, args.scale_factor, args.pool_pages, args.disk_mbps,
      args.repetitions);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto db = ssb::ColumnDatabase::Build(data, col::CompressionMode::kNone,
                                       args.pool_pages)
                .ValueOrDie();
  db->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  const core::StarSchema schema = db->Schema();

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  // ---- Serial reference: one client, private scans. Its hashes are the
  // ground truth every concurrent client must reproduce exactly. ----
  core::ExecConfig serial_cfg = core::ExecConfig::AllOn();
  serial_cfg.num_threads = 1;
  harness::SeriesResult serial;
  serial.name = "serial";
  CSTORE_CHECK(db->pool().Clear().ok());
  for (const core::StarQuery& q : ssb::AllQueries()) {
    uint64_t result_hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto r = core::ExecuteStarQuery(schema, q, serial_cfg);
          CSTORE_CHECK(r.ok());
          result_hash = r.ValueOrDie().Hash();
        },
        args.repetitions, &db->files().stats());
    cell.result_hash = result_hash;
    serial.by_query[q.id] = cell;
  }
  std::fprintf(stderr, "  serial reference done (avg %.1f ms)\n",
               serial.AverageSeconds() * 1e3);

  // ---- The two volleys: same clients, same mix, scans private vs shared.
  auto run_volley = [&](const std::string& mode,
                        core::SharedScanManager* manager) {
    CSTORE_CHECK(db->pool().Clear().ok());  // both modes start cold
    core::ExecConfig cfg = core::ExecConfig::AllOn();
    cfg.num_threads = 1;  // one core per client: throughput via concurrency
    cfg.shared_scans = manager;
    harness::ThroughputOptions options;
    options.clients = args.clients;
    options.rounds = args.repetitions;
    harness::ThroughputResult result = harness::RunThroughput(
        options, ids,
        [&](unsigned, const std::string& id) {
          auto r = core::ExecuteStarQuery(schema, ssb::QueryById(id), cfg);
          CSTORE_CHECK(r.ok());
          return r.ValueOrDie().Hash();
        },
        &db->files().stats());
    // Hard determinism gate, in-process: every client, every query, the
    // serial answer.
    for (const harness::ClientResult& client : result.clients) {
      for (const auto& [id, hash] : client.result_hashes) {
        if (hash != serial.by_query[id].result_hash) {
          std::fprintf(stderr,
                       "FATAL: %s client %u query %s hash %016llx != serial "
                       "%016llx\n",
                       mode.c_str(), client.client, id.c_str(),
                       static_cast<unsigned long long>(hash),
                       static_cast<unsigned long long>(
                           serial.by_query[id].result_hash));
          std::abort();
        }
      }
    }
    std::fprintf(stderr,
                 "  %s done: %.1f q/s, %llu pages read (%.1f pages/query)\n",
                 mode.c_str(), result.queries_per_sec,
                 static_cast<unsigned long long>(result.pages_read),
                 result.pages_per_query);
    return result;
  };

  const harness::ThroughputResult private_run = run_volley("private", nullptr);
  core::SharedScanManager manager;
  const harness::ThroughputResult shared_run = run_volley("shared", &manager);

  // ---- Report. ----
  const core::SharedScanManager::Stats mstats = manager.stats();
  std::printf("\n%-10s %12s %14s %14s\n", "mode", "queries/s", "pages read",
              "pages/query");
  std::printf("%-10s %12.1f %14llu %14.1f\n", "private",
              private_run.queries_per_sec,
              static_cast<unsigned long long>(private_run.pages_read),
              private_run.pages_per_query);
  std::printf("%-10s %12.1f %14llu %14.1f\n", "shared",
              shared_run.queries_per_sec,
              static_cast<unsigned long long>(shared_run.pages_read),
              shared_run.pages_per_query);
  if (private_run.pages_read > 0) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(shared_run.pages_read) /
                           static_cast<double>(private_run.pages_read));
    std::printf(
        "\nshared scans: %.1f%% fewer device pages, %.2fx queries/sec; "
        "%llu attaches, %llu joined an in-flight scan\n",
        saved, shared_run.queries_per_sec / private_run.queries_per_sec,
        static_cast<unsigned long long>(mstats.attaches),
        static_cast<unsigned long long>(mstats.attaches_in_flight));
    // Only meaningful when the volley actually pressured the pool; a smoke
    // run whose whole working set fits in frames has nothing to share.
    if (args.clients > 1 && private_run.pages_per_query >= 1.0 &&
        shared_run.pages_read >= private_run.pages_read) {
      std::printf(
          "WARNING: shared scans did not reduce pages read — no concurrent "
          "overlap on this run?\n");
    }
  }

  if (!args.json_path.empty()) {
    std::vector<harness::SeriesResult> series = {serial};
    auto add_clients = [&](const std::string& mode,
                           const harness::ThroughputResult& run) {
      for (const harness::ClientResult& client : run.clients) {
        harness::SeriesResult s;
        s.name = mode + "-c" + std::to_string(args.clients) + "-client" +
                 std::to_string(client.client);
        for (const std::string& id : ids) {
          harness::CellResult cell;
          cell.seconds = client.query_seconds.at(id);
          cell.result_hash = client.result_hashes.at(id);
          s.by_query[id] = cell;
        }
        series.push_back(std::move(s));
      }
    };
    add_clients("private", private_run);
    add_clients("shared", shared_run);
    harness::WriteResultsJson(args.json_path, "fig_throughput", args, ids,
                              series);
  }
  return 0;
}
