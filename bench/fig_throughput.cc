// Throughput under concurrent clients: private scans vs cooperative shared
// scans, with optional per-query admission control (--admit N).
//
// The paper times one query at a time; this bench measures the regime the
// ROADMAP's "millions of users" goal cares about: M clients (one
// engine::Session each) firing the 13-query SSBM mix at one database, with
// a buffer pool deliberately smaller than the working set (the paper's
// pool:data ratio) and the simulated disk charging every miss. Private
// scans multiply pool pressure by M — every client drags its own miss
// stream from page 0. With shared scans each query attaches to the
// in-flight scan of its column, trails the hot pages, and wraps around, so
// concurrent clients share fetches. --admit N additionally caps in-flight
// queries at N via the engine's admission gate: arrivals stagger into the
// scan groups instead of thundering in at once, and every query's
// admission wait is reported in its QueryStats.
//
// The database is uncompressed (kNone): fact scans there actually walk
// their pages (compressed flight-1 scans are mostly zone-map skips), which
// is the I/O-bound case shared scans exist for.
//
// Determinism is enforced, not hoped for: every client's per-query result
// hash is CHECKed against the serial single-client answer in-process, and
// --json emits per-client series (<mode>-c<M>[-a<N>]-client<k>) so
// bench/check_bench_regression.py hard-fails CI on any divergence —
// including for admission-capped runs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "harness/throughput.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Throughput — %u concurrent clients over the SSBM mix, SF=%.3g, "
      "pool=%zu pages, disk=%g MB/s, %d round(s)/client, admit=%s\n",
      args.clients, args.scale_factor, args.pool_pages, args.disk_mbps,
      args.repetitions,
      args.admit == 0 ? "unlimited" : std::to_string(args.admit).c_str());

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto db = ssb::ColumnDatabase::Build(data, col::CompressionMode::kNone,
                                       args.pool_pages)
                .ValueOrDie();
  db->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  core::ExecConfig client_cfg = core::ExecConfig::AllOn();
  client_cfg.num_threads = 1;  // one core per client: throughput via concurrency

  // ---- Serial reference: one session on an unconstrained engine. Its
  // hashes are the ground truth every concurrent client must reproduce. ----
  engine::EngineOptions serial_options;
  serial_options.default_config = client_cfg;
  engine::Engine serial_engine(serial_options);
  serial_engine.Register("CS", engine::MakeColumnStoreDesign(db->Schema()));
  auto serial_session = serial_engine.OpenSession("CS");
  harness::SeriesResult serial;
  serial.name = "serial";
  CSTORE_CHECK(db->pool().Clear().ok());
  for (const plan::Plan& q : ssb::AllQueries()) {
    uint64_t result_hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto outcome = serial_session->Run(q);
          CSTORE_CHECK(outcome.ok());
          result_hash = outcome.ValueOrDie().result.Hash();
          return outcome.ValueOrDie().stats;
        },
        args.repetitions);
    cell.result_hash = result_hash;
    serial.by_query[q.id()] = cell;
  }
  std::fprintf(stderr, "  serial reference done (avg %.1f ms)\n",
               serial.AverageSeconds() * 1e3);

  // ---- The two volleys: same clients, same mix, scans private vs shared,
  // both behind the same admission cap. ----
  auto run_volley = [&](const std::string& mode, bool shared_scans) {
    CSTORE_CHECK(db->pool().Clear().ok());  // both modes start cold
    engine::EngineOptions options;
    options.max_inflight_queries = args.admit;
    options.shared_scans = shared_scans;
    options.default_config = client_cfg;
    engine::Engine engine(options);
    engine.Register("CS", engine::MakeColumnStoreDesign(db->Schema()));
    std::vector<std::unique_ptr<engine::Session>> sessions;
    for (unsigned c = 0; c < args.clients; ++c) {
      sessions.push_back(engine.OpenSession("CS"));
    }

    harness::ThroughputOptions volley;
    volley.clients = args.clients;
    volley.rounds = args.repetitions;
    harness::ThroughputResult result = harness::RunThroughput(
        volley, ids, [&](unsigned client, const std::string& id) {
          auto outcome = sessions[client]->Run(ssb::QueryById(id));
          CSTORE_CHECK(outcome.ok());
          return harness::QueryRun{outcome.ValueOrDie().result.Hash(),
                                   outcome.ValueOrDie().stats};
        });
    // Hard determinism gate, in-process: every client, every query, the
    // serial answer — admission-capped or not.
    for (const harness::ClientResult& client : result.clients) {
      for (const auto& [id, hash] : client.result_hashes) {
        if (hash != serial.by_query[id].result_hash) {
          std::fprintf(stderr,
                       "FATAL: %s client %u query %s hash %016llx != serial "
                       "%016llx\n",
                       mode.c_str(), client.client, id.c_str(),
                       static_cast<unsigned long long>(hash),
                       static_cast<unsigned long long>(
                           serial.by_query[id].result_hash));
          std::abort();
        }
      }
    }
    const engine::Engine::Stats estats = engine.stats();
    std::fprintf(stderr,
                 "  %s done: %.1f q/s, %llu pages read (%.1f pages/query), "
                 "%llu/%llu queries waited at the gate (%.1f ms total)\n",
                 mode.c_str(), result.queries_per_sec,
                 static_cast<unsigned long long>(result.pages_read),
                 result.pages_per_query,
                 static_cast<unsigned long long>(estats.queries_waited),
                 static_cast<unsigned long long>(estats.queries_run),
                 estats.admission_wait_seconds * 1e3);
    return result;
  };

  const harness::ThroughputResult private_run =
      run_volley("private", /*shared_scans=*/false);
  const harness::ThroughputResult shared_run =
      run_volley("shared", /*shared_scans=*/true);

  // ---- Report. ----
  std::printf("\n%-10s %12s %14s %14s %14s\n", "mode", "queries/s",
              "pages read", "pages/query", "admit-wait ms");
  std::printf("%-10s %12.1f %14llu %14.1f %14.1f\n", "private",
              private_run.queries_per_sec,
              static_cast<unsigned long long>(private_run.pages_read),
              private_run.pages_per_query,
              private_run.admission_wait_seconds * 1e3);
  std::printf("%-10s %12.1f %14llu %14.1f %14.1f\n", "shared",
              shared_run.queries_per_sec,
              static_cast<unsigned long long>(shared_run.pages_read),
              shared_run.pages_per_query,
              shared_run.admission_wait_seconds * 1e3);
  if (private_run.pages_read > 0) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(shared_run.pages_read) /
                           static_cast<double>(private_run.pages_read));
    std::printf("\nshared scans: %.1f%% fewer device pages, %.2fx queries/sec\n",
                saved, shared_run.queries_per_sec / private_run.queries_per_sec);
    // Only meaningful when the volley actually pressured the pool; a smoke
    // run whose whole working set fits in frames has nothing to share.
    if (args.clients > 1 && private_run.pages_per_query >= 1.0 &&
        shared_run.pages_read >= private_run.pages_read) {
      std::printf(
          "WARNING: shared scans did not reduce pages read — no concurrent "
          "overlap on this run?\n");
    }
  }

  if (!args.json_path.empty()) {
    std::vector<harness::SeriesResult> series = {serial};
    const std::string suffix =
        "-c" + std::to_string(args.clients) +
        (args.admit > 0 ? "-a" + std::to_string(args.admit) : "") + "-client";
    auto add_clients = [&](const std::string& mode,
                           const harness::ThroughputResult& run) {
      for (const harness::ClientResult& client : run.clients) {
        harness::SeriesResult s;
        s.name = mode + suffix + std::to_string(client.client);
        for (const std::string& id : ids) {
          const core::QueryStats& stats = client.query_stats.at(id);
          harness::CellResult cell;
          cell.seconds = stats.seconds;
          cell.pages_read = stats.pages_read;
          cell.pages_skipped = stats.pages_skipped;
          cell.pages_all_match = stats.pages_all_match;
          cell.pages_scanned = stats.pages_scanned;
          cell.values_scanned = stats.values_scanned;
          cell.admission_wait_seconds = stats.admission_wait_seconds;
          cell.result_hash = client.result_hashes.at(id);
          s.by_query[id] = cell;
        }
        series.push_back(std::move(s));
      }
    };
    add_clients("private", private_run);
    add_clients("shared", shared_run);
    harness::WriteResultsJson(args.json_path, "fig_throughput", args, ids,
                              series);
  }
  return 0;
}
