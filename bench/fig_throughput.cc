// Throughput under concurrent clients: private scans vs cooperative shared
// scans, with optional per-query admission control (--admit N).
//
// The paper times one query at a time; this bench measures the regime the
// ROADMAP's "millions of users" goal cares about: M clients (one
// engine::Session each) firing the 13-query SSBM mix at one database, with
// a buffer pool deliberately smaller than the working set (the paper's
// pool:data ratio) and the simulated disk charging every miss. Private
// scans multiply pool pressure by M — every client drags its own miss
// stream from page 0. With shared scans each query attaches to the
// in-flight scan of its column, trails the hot pages, and wraps around, so
// concurrent clients share fetches. --admit N additionally caps in-flight
// queries at N via the engine's admission gate: arrivals stagger into the
// scan groups instead of thundering in at once, and every query's
// admission wait is reported in its QueryStats.
//
// The database is uncompressed (kNone): fact scans there actually walk
// their pages (compressed flight-1 scans are mostly zone-map skips), which
// is the I/O-bound case shared scans exist for.
//
// Determinism is enforced, not hoped for: every client's per-query result
// hash is CHECKed against the serial single-client answer in-process, and
// --json emits per-client series (<mode>-c<M>[-a<N>]-client<k>) so
// bench/check_bench_regression.py hard-fails CI on any divergence —
// including for admission-capped runs.
//
// --writers W > 0 switches to the *mixed* volley instead: the database
// becomes a writeable engine::Store (with the background merger on), W
// writer threads apply a deterministic mutation stream through
// Session::Insert/Delete while the M reader clients fire the mix, and
// every reader answer is gated against the serial-replay oracle — each
// outcome's pinned snapshot_epoch is replayed over the recorded ops
// (ssb::ReplayAt) and re-answered by the naive reference; any divergence
// aborts. Snapshot stability under concurrent writes and merges is
// checked, not hoped for. Mixed-mode hashes depend on thread interleaving,
// so the JSON emits them unrecorded (0) — CI's hash gate covers read-only
// runs; the replay gate covers this one, in-process.
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "harness/throughput.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/mutations.h"
#include "ssb/queries.h"
#include "ssb/reference.h"
#include "util/stopwatch.h"

using namespace cstore;

namespace {

/// The mixed read/write volley: readers race writers and a background
/// merger, then every observed (query, pinned epoch, hash) is re-derived
/// serially. Returns per-client series for the JSON (hashes unrecorded).
std::vector<harness::SeriesResult> RunMixedVolley(
    const harness::BenchArgs& args, const ssb::SsbData& data,
    const std::vector<std::string>& ids, const core::ExecConfig& client_cfg) {
  engine::StoreOptions store_options;
  store_options.compression = col::CompressionMode::kNone;
  store_options.pool_pages = args.pool_pages;
  store_options.merge_threshold_rows = 1024;  // merger swaps bases mid-volley
  auto store = engine::Store::Open(data, store_options).ValueOrDie();

  engine::EngineOptions options;
  options.max_inflight_queries = args.admit;
  options.default_config = client_cfg;
  engine::Engine engine(options);
  engine.AttachStore(store.get());
  engine::RegisterStoreDesigns(&engine, store.get());

  struct Observation {
    std::string id;
    uint64_t epoch = 0;
    uint64_t hash = 0;
  };
  std::vector<std::vector<Observation>> observed(args.clients);
  std::vector<harness::SeriesResult> series(args.clients);
  std::atomic<bool> stop{false};

  // Writers: each applies its own deterministic stream, recording the
  // commit epoch of every op for the replay oracle. The per-writer op
  // budget is bounded (it scales with --reps, not with how long the
  // readers take): an open-ended write loop would let the merged base —
  // and thus reader latency, and thus the volley, and thus the write
  // volume — grow without bound.
  const uint64_t ops_per_writer = 16 * static_cast<uint64_t>(args.repetitions);
  std::mutex ops_mu;
  std::vector<ssb::MutationOp> ops;
  uint64_t rows_written = 0, rows_deleted = 0;
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < args.writers; ++w) {
    writers.emplace_back([&, w] {
      auto session = engine.OpenSession("CS");
      ssb::MutationStream stream(data, /*seed=*/0xbeef + w);
      for (uint64_t n = 0;
           n < ops_per_writer && !stop.load(std::memory_order_relaxed); ++n) {
        ssb::MutationOp op = stream.Next(/*batch_rows=*/256);
        Result<engine::WriteOutcome> out =
            op.kind == ssb::MutationOp::Kind::kInsert
                ? session->Insert("lineorder", op.rows)
                : session->Delete("lineorder", op.predicate);
        CSTORE_CHECK(out.ok());
        op.epoch = out.ValueOrDie().epoch;
        {
          std::lock_guard<std::mutex> lock(ops_mu);
          rows_written += out.ValueOrDie().stats.rows_written;
          rows_deleted += out.ValueOrDie().stats.rows_deleted;
          ops.push_back(std::move(op));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // Readers: the standard mix, `reps` rounds each. Hashes vary with the
  // pinned epoch, so each run records (id, epoch, hash) instead of
  // asserting round-to-round equality.
  util::Stopwatch volley;
  std::vector<std::thread> readers;
  for (unsigned c = 0; c < args.clients; ++c) {
    readers.emplace_back([&, c] {
      auto session = engine.OpenSession("CS");
      harness::SeriesResult& s = series[c];
      s.name = "mixed-c" + std::to_string(args.clients) + "-w" +
               std::to_string(args.writers) + "-client" + std::to_string(c);
      for (int round = 0; round < args.repetitions; ++round) {
        for (size_t i = 0; i < ids.size(); ++i) {
          // Rotate the mix per client so different queries overlap.
          const std::string& id = ids[(i + c) % ids.size()];
          auto outcome = session->Run(ssb::QueryById(id));
          CSTORE_CHECK(outcome.ok());
          const engine::QueryOutcome& o = outcome.ValueOrDie();
          observed[c].push_back(
              Observation{id, o.snapshot_epoch, o.result.Hash()});
          harness::CellResult& cell = s.by_query[id];
          cell.seconds += o.stats.seconds / args.repetitions;
          cell.pages_read += o.stats.pages_read / args.repetitions;
          cell.values_examined +=
              o.stats.values_examined / args.repetitions;
          cell.admission_wait_seconds +=
              o.stats.admission_wait_seconds / args.repetitions;
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  const double wall = volley.ElapsedSeconds();
  stop.store(true);
  for (std::thread& t : writers) t.join();

  const engine::Store::MergeStats merges = store->merge_stats();
  uint64_t queries = 0;
  for (const auto& v : observed) queries += v.size();
  std::fprintf(stderr,
               "  mixed done: %.1f q/s, %llu ops (%llu rows in, %llu rows "
               "out), %llu merge(s)\n",
               static_cast<double>(queries) / wall,
               static_cast<unsigned long long>(ops.size()),
               static_cast<unsigned long long>(rows_written),
               static_cast<unsigned long long>(rows_deleted),
               static_cast<unsigned long long>(merges.merges));

  // ---- Serial-replay gate: every answer re-derived from its epoch. ----
  std::map<uint64_t, ssb::SsbData> replayed;  // epoch -> logical table
  std::map<std::pair<uint64_t, std::string>, uint64_t> oracle;
  uint64_t checked = 0;
  for (unsigned c = 0; c < args.clients; ++c) {
    for (const Observation& ob : observed[c]) {
      const auto key = std::make_pair(ob.epoch, ob.id);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        auto rep = replayed.find(ob.epoch);
        if (rep == replayed.end()) {
          rep = replayed.emplace(ob.epoch, ssb::ReplayAt(data, ops, ob.epoch))
                    .first;
        }
        const core::QueryResult expected =
            ssb::ReferenceExecute(rep->second, ssb::LoweredQueryById(ob.id));
        it = oracle.emplace(key, expected.Hash()).first;
      }
      if (ob.hash != it->second) {
        std::fprintf(stderr,
                     "FATAL: client %u query %s at epoch %llu: hash %016llx "
                     "!= serial replay %016llx\n",
                     c, ob.id.c_str(),
                     static_cast<unsigned long long>(ob.epoch),
                     static_cast<unsigned long long>(ob.hash),
                     static_cast<unsigned long long>(it->second));
        std::abort();
      }
      ++checked;
    }
  }
  std::printf(
      "mixed volley: %llu answers verified against serial replay of %zu "
      "distinct epochs (%llu ops, %llu merges)\n",
      static_cast<unsigned long long>(checked), replayed.size(),
      static_cast<unsigned long long>(ops.size()),
      static_cast<unsigned long long>(merges.merges));
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Throughput — %u concurrent clients over the SSBM mix, SF=%.3g, "
      "pool=%zu pages, disk=%g MB/s, %d round(s)/client, admit=%s\n",
      args.clients, args.scale_factor, args.pool_pages, args.disk_mbps,
      args.repetitions,
      args.admit == 0 ? "unlimited" : std::to_string(args.admit).c_str());

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  core::ExecConfig client_cfg = core::ExecConfig::AllOn();
  client_cfg.num_threads = 1;  // one core per client: throughput via concurrency

  if (args.writers > 0) {
    std::printf("mixed volley: %u writer(s) racing the readers and the "
                "background merger\n", args.writers);
    const std::vector<harness::SeriesResult> series =
        RunMixedVolley(args, data, ids, client_cfg);
    if (!args.json_path.empty()) {
      harness::WriteResultsJson(args.json_path, "fig_throughput", args, ids,
                                series);
    }
    return 0;
  }

  auto db = ssb::ColumnDatabase::Build(data, col::CompressionMode::kNone,
                                       args.pool_pages)
                .ValueOrDie();
  db->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  // ---- Serial reference: one session on an unconstrained engine. Its
  // hashes are the ground truth every concurrent client must reproduce. ----
  engine::EngineOptions serial_options;
  serial_options.default_config = client_cfg;
  engine::Engine serial_engine(serial_options);
  serial_engine.Register("CS", engine::MakeColumnStoreDesign(db->Schema()));
  auto serial_session = serial_engine.OpenSession("CS");
  harness::SeriesResult serial;
  serial.name = "serial";
  CSTORE_CHECK(db->pool().Clear().ok());
  for (const plan::Plan& q : ssb::AllQueries()) {
    uint64_t result_hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto outcome = serial_session->Run(q);
          CSTORE_CHECK(outcome.ok());
          result_hash = outcome.ValueOrDie().result.Hash();
          return outcome.ValueOrDie().stats;
        },
        args.repetitions);
    cell.result_hash = result_hash;
    serial.by_query[q.id()] = cell;
  }
  std::fprintf(stderr, "  serial reference done (avg %.1f ms)\n",
               serial.AverageSeconds() * 1e3);

  // ---- The two volleys: same clients, same mix, scans private vs shared,
  // both behind the same admission cap. ----
  auto run_volley = [&](const std::string& mode, bool shared_scans) {
    CSTORE_CHECK(db->pool().Clear().ok());  // both modes start cold
    engine::EngineOptions options;
    options.max_inflight_queries = args.admit;
    options.shared_scans = shared_scans;
    options.default_config = client_cfg;
    engine::Engine engine(options);
    engine.Register("CS", engine::MakeColumnStoreDesign(db->Schema()));
    std::vector<std::unique_ptr<engine::Session>> sessions;
    for (unsigned c = 0; c < args.clients; ++c) {
      sessions.push_back(engine.OpenSession("CS"));
    }

    harness::ThroughputOptions volley;
    volley.clients = args.clients;
    volley.rounds = args.repetitions;
    harness::ThroughputResult result = harness::RunThroughput(
        volley, ids, [&](unsigned client, const std::string& id) {
          auto outcome = sessions[client]->Run(ssb::QueryById(id));
          CSTORE_CHECK(outcome.ok());
          return harness::QueryRun{outcome.ValueOrDie().result.Hash(),
                                   outcome.ValueOrDie().stats};
        });
    // Hard determinism gate, in-process: every client, every query, the
    // serial answer — admission-capped or not.
    for (const harness::ClientResult& client : result.clients) {
      for (const auto& [id, hash] : client.result_hashes) {
        if (hash != serial.by_query[id].result_hash) {
          std::fprintf(stderr,
                       "FATAL: %s client %u query %s hash %016llx != serial "
                       "%016llx\n",
                       mode.c_str(), client.client, id.c_str(),
                       static_cast<unsigned long long>(hash),
                       static_cast<unsigned long long>(
                           serial.by_query[id].result_hash));
          std::abort();
        }
      }
    }
    const engine::Engine::Stats estats = engine.stats();
    std::fprintf(stderr,
                 "  %s done: %.1f q/s, %llu pages read (%.1f pages/query), "
                 "%llu/%llu queries waited at the gate (%.1f ms total)\n",
                 mode.c_str(), result.queries_per_sec,
                 static_cast<unsigned long long>(result.pages_read),
                 result.pages_per_query,
                 static_cast<unsigned long long>(estats.queries_waited),
                 static_cast<unsigned long long>(estats.queries_run),
                 estats.admission_wait_seconds * 1e3);
    return result;
  };

  const harness::ThroughputResult private_run =
      run_volley("private", /*shared_scans=*/false);
  const harness::ThroughputResult shared_run =
      run_volley("shared", /*shared_scans=*/true);

  // ---- Report. ----
  std::printf("\n%-10s %12s %14s %14s %14s\n", "mode", "queries/s",
              "pages read", "pages/query", "admit-wait ms");
  std::printf("%-10s %12.1f %14llu %14.1f %14.1f\n", "private",
              private_run.queries_per_sec,
              static_cast<unsigned long long>(private_run.pages_read),
              private_run.pages_per_query,
              private_run.admission_wait_seconds * 1e3);
  std::printf("%-10s %12.1f %14llu %14.1f %14.1f\n", "shared",
              shared_run.queries_per_sec,
              static_cast<unsigned long long>(shared_run.pages_read),
              shared_run.pages_per_query,
              shared_run.admission_wait_seconds * 1e3);
  if (private_run.pages_read > 0) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(shared_run.pages_read) /
                           static_cast<double>(private_run.pages_read));
    std::printf("\nshared scans: %.1f%% fewer device pages, %.2fx queries/sec\n",
                saved, shared_run.queries_per_sec / private_run.queries_per_sec);
    // Only meaningful when the volley actually pressured the pool; a smoke
    // run whose whole working set fits in frames has nothing to share.
    if (args.clients > 1 && private_run.pages_per_query >= 1.0 &&
        shared_run.pages_read >= private_run.pages_read) {
      std::printf(
          "WARNING: shared scans did not reduce pages read — no concurrent "
          "overlap on this run?\n");
    }
  }

  if (!args.json_path.empty()) {
    std::vector<harness::SeriesResult> series = {serial};
    const std::string suffix =
        "-c" + std::to_string(args.clients) +
        (args.admit > 0 ? "-a" + std::to_string(args.admit) : "") + "-client";
    auto add_clients = [&](const std::string& mode,
                           const harness::ThroughputResult& run) {
      for (const harness::ClientResult& client : run.clients) {
        harness::SeriesResult s;
        s.name = mode + suffix + std::to_string(client.client);
        for (const std::string& id : ids) {
          const core::QueryStats& stats = client.query_stats.at(id);
          harness::CellResult cell;
          cell.seconds = stats.seconds;
          cell.pages_read = stats.pages_read;
          cell.pages_skipped = stats.pages_skipped;
          cell.pages_all_match = stats.pages_all_match;
          cell.pages_scanned = stats.pages_scanned;
          cell.values_scanned = stats.values_scanned;
          cell.values_gathered = stats.values_gathered;
          cell.values_examined = stats.values_examined;
          cell.admission_wait_seconds = stats.admission_wait_seconds;
          cell.result_hash = client.result_hashes.at(id);
          s.by_query[id] = cell;
        }
        series.push_back(std::move(s));
      }
    };
    add_clients("private", private_run);
    add_clients("shared", shared_run);
    harness::WriteResultsJson(args.json_path, "fig_throughput", args, ids,
                              series);
  }
  return 0;
}
