// §6.1/§6.2 partitioning claim: orderdate-year partitioning gives the
// traditional row-store about a 2x average speedup, concentrated in queries
// with orderdate predicates (flight 1 and 3.4, 4.2, 4.3).
#include <cstdio>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "ssb/row_exec.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Partitioning study — traditional row-store, SF=%.3g (ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  ssb::RowDbOptions with;
  with.partition_lineorder = true;
  with.pool_pages = args.pool_pages;
  ssb::RowDbOptions without;
  without.partition_lineorder = false;
  without.pool_pages = args.pool_pages;
  auto db_part = ssb::RowDatabase::Build(data, with).ValueOrDie();
  auto db_flat = ssb::RowDatabase::Build(data, without).ValueOrDie();
  db_part->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  db_flat->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  // Both layouts are the traditional design behind one engine front door;
  // only the registered database differs.
  core::ExecConfig serial_cfg;
  serial_cfg.num_threads = 1;
  engine::EngineOptions engine_options;
  engine_options.default_config = serial_cfg;
  engine::Engine engine(engine_options);
  engine.Register("part", engine::MakeRowStoreDesign(
                              db_part.get(), ssb::RowDesign::kTraditional));
  engine.Register("flat", engine::MakeRowStoreDesign(
                              db_flat.get(), ssb::RowDesign::kTraditional));
  auto session_part = engine.OpenSession("part");
  auto session_flat = engine.OpenSession("flat");

  std::vector<harness::SeriesResult> series(2);
  series[0].name = "T (partitioned)";
  series[1].name = "T (unpartitioned)";
  for (const plan::Plan& q : ssb::AllQueries()) {
    auto time_row = [&](engine::Session& session) {
      return harness::TimeCell(
          [&] {
            auto outcome = session.Run(q);
            CSTORE_CHECK(outcome.ok());
            return outcome.ValueOrDie().stats;
          },
          args.repetitions);
    };
    series[0].by_query[q.id()] = time_row(*session_part);
    series[1].by_query[q.id()] = time_row(*session_flat);
  }
  harness::PrintFigure("orderdate-year partitioning (ms)", ids, series);
  std::printf("\nAverage speedup from partitioning: %.2fx (paper: ~2x)\n",
              series[1].AverageSeconds() / series[0].AverageSeconds());
  return 0;
}
