// Figure 5: baseline comparison of the row-store and column-store.
//
//   RS          traditional row-store (partitioned on orderdate year)
//   RS (MV)     row-store with optimal per-query materialized views
//   CS          column-store, all optimizations (tICL on compressed data)
//   CS (Row-MV) row-oriented MV data stored inside the column-store
//
// Paper shape: CS < RS(MV) < RS < CS(Row-MV); CS beats RS by ~6x and RS(MV)
// by ~3x; CS(Row-MV) is the slowest, showing that tuple reconstruction, not
// I/O, dominates.
#include <cstdio>

#include "core/star_executor.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "ssb/row_exec.h"
#include "ssb/row_mv_cstore.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 5 — SSBM baseline, SF=%.3g (times in ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  ssb::RowDbOptions row_options;
  row_options.materialized_views = true;
  row_options.pool_pages = args.pool_pages;
  auto row_db = ssb::RowDatabase::Build(data, row_options).ValueOrDie();
  auto col_db = ssb::ColumnDatabase::Build(data, col::CompressionMode::kFull,
                                           args.pool_pages)
                    .ValueOrDie();
  auto row_mv = ssb::RowMvDatabase::Build(data, args.pool_pages).ValueOrDie();
  row_db->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  col_db->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  row_mv->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  // Paper series run single-threaded; the "-pN" series rerun the row-store
  // scan and the full-optimization column store with N morsel workers.
  const unsigned threads = args.threads;
  core::ExecConfig cs_serial = core::ExecConfig::AllOn();
  cs_serial.num_threads = 1;
  core::ExecConfig cs_parallel = core::ExecConfig::AllOn();
  cs_parallel.num_threads = threads;

  std::vector<harness::SeriesResult> series(threads > 1 ? 7 : 4);
  series[0].name = "RS";
  series[1].name = "RS (MV)";
  series[2].name = "CS";
  series[3].name = "CS (Row-MV)";
  if (threads > 1) {
    series[4].name = "RS-p" + std::to_string(threads);
    series[5].name = "CS-p" + std::to_string(threads);
    series[6].name = "RS (MV)-p" + std::to_string(threads);
  }

  // Times one cell and records the answer hash alongside (CI hard-fails
  // when a hash drifts between runs or between serial and parallel series).
  // Every series funnels through this so no cell can forget its hash.
  auto time_result = [&](auto run, const storage::IoStats* stats) {
    uint64_t hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto r = run();
          CSTORE_CHECK(r.ok());
          hash = r.ValueOrDie().Hash();
        },
        args.repetitions, stats);
    cell.result_hash = hash;
    return cell;
  };
  auto time_row = [&](const core::StarQuery& q, ssb::RowDesign design,
                      unsigned n_threads, ssb::RowDatabase* db) {
    return time_result(
        [&] { return ssb::ExecuteRowQuery(*db, q, design, n_threads); },
        &db->files().stats());
  };
  auto time_cs = [&](const core::StarQuery& q, const core::ExecConfig& exec) {
    return time_result(
        [&] { return core::ExecuteStarQuery(col_db->Schema(), q, exec); },
        &col_db->files().stats());
  };

  for (const core::StarQuery& q : ssb::AllQueries()) {
    series[0].by_query[q.id] =
        time_row(q, ssb::RowDesign::kTraditional, 1, row_db.get());
    series[1].by_query[q.id] =
        time_row(q, ssb::RowDesign::kMaterializedViews, 1, row_db.get());
    series[2].by_query[q.id] = time_cs(q, cs_serial);
    series[3].by_query[q.id] = time_result(
        [&] { return row_mv->Execute(q); }, &row_mv->files().stats());
    if (threads > 1) {
      series[4].by_query[q.id] =
          time_row(q, ssb::RowDesign::kTraditional, threads, row_db.get());
      series[5].by_query[q.id] = time_cs(q, cs_parallel);
      series[6].by_query[q.id] =
          time_row(q, ssb::RowDesign::kMaterializedViews, threads, row_db.get());
    }
    std::fprintf(stderr, "  Q%s done\n", q.id.c_str());
  }

  harness::PrintFigure("Figure 5 — baseline performance (ms)", ids, series);
  if (threads > 1) {
    harness::PrintSpeedups("Figure 5 — RS morsel-driven scaling", ids,
                           series[0], series[4]);
    harness::PrintSpeedups("Figure 5 — CS morsel-driven scaling", ids,
                           series[2], series[5]);
    harness::PrintSpeedups("Figure 5 — RS (MV) morsel-driven scaling", ids,
                           series[1], series[6]);
  }
  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "fig5", args, ids, series);
  }
  const double rs = series[0].AverageSeconds();
  const double cs = series[2].AverageSeconds();
  const double rs_mv = series[1].AverageSeconds();
  std::printf("\nSpeedups: CS vs RS = %.1fx, CS vs RS(MV) = %.1fx, "
              "CS(Row-MV)/CS = %.1fx\n",
              rs / cs, rs_mv / cs, series[3].AverageSeconds() / cs);
  return 0;
}
