// Figure 5: baseline comparison of the row-store and column-store.
//
//   RS          traditional row-store (partitioned on orderdate year)
//   RS (MV)     row-store with optimal per-query materialized views
//   CS          column-store, all optimizations (tICL on compressed data)
//   CS (Row-MV) row-oriented MV data stored inside the column-store
//
// Paper shape: CS < RS(MV) < RS < CS(Row-MV); CS beats RS by ~6x and RS(MV)
// by ~3x; CS(Row-MV) is the slowest, showing that tuple reconstruction, not
// I/O, dominates.
//
// All four systems are engine::Designs behind one engine; every cell is a
// Session::Run whose QueryStats carry the timing-adjacent telemetry — no
// global counters are diffed.
#include <cstdio>
#include <memory>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "ssb/row_exec.h"
#include "ssb/row_mv_cstore.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 5 — SSBM baseline, SF=%.3g (times in ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  ssb::RowDbOptions row_options;
  row_options.materialized_views = true;
  row_options.pool_pages = args.pool_pages;
  auto row_db = ssb::RowDatabase::Build(data, row_options).ValueOrDie();
  auto col_db = ssb::ColumnDatabase::Build(data, col::CompressionMode::kFull,
                                           args.pool_pages)
                    .ValueOrDie();
  auto row_mv = ssb::RowMvDatabase::Build(data, args.pool_pages).ValueOrDie();
  row_db->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  col_db->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  row_mv->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  // One engine, four physical designs, one front door.
  core::ExecConfig serial_cfg = core::ExecConfig::AllOn();
  serial_cfg.num_threads = 1;
  engine::EngineOptions engine_options;
  engine_options.default_config = serial_cfg;
  engine::Engine engine(engine_options);
  engine.Register("RS", engine::MakeRowStoreDesign(
                            row_db.get(), ssb::RowDesign::kTraditional));
  engine.Register("RS (MV)",
                  engine::MakeRowStoreDesign(
                      row_db.get(), ssb::RowDesign::kMaterializedViews));
  engine.Register("CS", engine::MakeColumnStoreDesign(col_db->Schema()));
  engine.Register("CS (Row-MV)",
                  engine::MakeFunctionDesign(
                      [&](const core::StarQuery& q, core::ExecContext&) {
                        return row_mv->Execute(q);
                      }));

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  // Paper series run single-threaded; the "-pN" series rerun the row-store
  // scans and the full-optimization column store with N morsel workers
  // (same designs, sessions with a bigger thread budget).
  const unsigned threads = args.threads;

  // Times one cell through a session and records the answer hash alongside
  // (CI hard-fails when a hash drifts between runs or between serial and
  // parallel series). Every series funnels through this so no cell can
  // forget its hash.
  auto time_cell = [&](engine::Session& session, const plan::Plan& q) {
    uint64_t hash = 0;
    harness::CellResult cell = harness::TimeCell(
        [&] {
          auto outcome = session.Run(q);
          CSTORE_CHECK(outcome.ok());
          hash = outcome.ValueOrDie().result.Hash();
          return outcome.ValueOrDie().stats;
        },
        args.repetitions);
    cell.result_hash = hash;
    return cell;
  };

  struct SeriesSpec {
    std::string label;
    std::unique_ptr<engine::Session> session;
  };
  std::vector<SeriesSpec> specs;
  auto add_spec = [&](const std::string& label, const std::string& design,
                      unsigned n_threads) {
    SeriesSpec spec{label, engine.OpenSession(design)};
    spec.session->config().num_threads = n_threads;
    specs.push_back(std::move(spec));
  };
  add_spec("RS", "RS", 1);
  add_spec("RS (MV)", "RS (MV)", 1);
  add_spec("CS", "CS", 1);
  add_spec("CS (Row-MV)", "CS (Row-MV)", 1);
  if (threads > 1) {
    add_spec("RS-p" + std::to_string(threads), "RS", threads);
    add_spec("CS-p" + std::to_string(threads), "CS", threads);
    add_spec("RS (MV)-p" + std::to_string(threads), "RS (MV)", threads);
  }

  std::vector<harness::SeriesResult> series(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) series[s].name = specs[s].label;
  for (const plan::Plan& q : ssb::AllQueries()) {
    for (size_t s = 0; s < specs.size(); ++s) {
      series[s].by_query[q.id()] = time_cell(*specs[s].session, q);
    }
    std::fprintf(stderr, "  Q%s done\n", q.id().c_str());
  }

  harness::PrintFigure("Figure 5 — baseline performance (ms)", ids, series);
  if (threads > 1) {
    harness::PrintSpeedups("Figure 5 — RS morsel-driven scaling", ids,
                           series[0], series[4]);
    harness::PrintSpeedups("Figure 5 — CS morsel-driven scaling", ids,
                           series[2], series[5]);
    harness::PrintSpeedups("Figure 5 — RS (MV) morsel-driven scaling", ids,
                           series[1], series[6]);
  }
  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "fig5", args, ids, series);
  }
  const double rs = series[0].AverageSeconds();
  const double cs = series[2].AverageSeconds();
  const double rs_mv = series[1].AverageSeconds();
  std::printf("\nSpeedups: CS vs RS = %.1fx, CS vs RS(MV) = %.1fx, "
              "CS(Row-MV)/CS = %.1fx\n",
              rs / cs, rs_mv / cs, series[3].AverageSeconds() / cs);
  return 0;
}
