// Figure 7: C-Store optimizations removed one by one (§6.3.2).
//
// Configuration code: T/t = tuple/block iteration, I/i = invisible join
// on/off, C/c = compressed/uncompressed storage, L/l = late/early
// materialization. The paper's seven steps:
//
//   tICL  full optimizations            TICL  block iteration removed
//   tiCL  invisible join removed        TiCL  both removed
//   ticL  compression also removed      TicL  ...
//   Ticl  everything removed (the column-store behaving like a row-store)
//
// Paper shape: compression ~2x on average (an order of magnitude on flight
// 1), late materialization ~3x, block iteration and invisible join ~1.5x.
#include <cstdio>

#include "core/star_executor.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 7 — C-Store optimization breakdown, SF=%.3g (ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto compressed = ssb::ColumnDatabase::Build(
                        data, col::CompressionMode::kFull, args.pool_pages)
                        .ValueOrDie();
  auto uncompressed = ssb::ColumnDatabase::Build(
                          data, col::CompressionMode::kNone, args.pool_pages)
                          .ValueOrDie();
  compressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  uncompressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  struct Config {
    const char* code;
    bool compressed;
    core::ExecConfig exec;
  };
  const Config configs[] = {
      {"tICL", true, {true, true, true}},
      {"TICL", true, {false, true, true}},
      {"tiCL", true, {true, false, true}},
      {"TiCL", true, {false, false, true}},
      {"ticL", false, {true, false, true}},
      {"TicL", false, {false, false, true}},
      {"Ticl", false, {false, false, false}},
  };

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  std::vector<harness::SeriesResult> series;
  for (const Config& config : configs) {
    ssb::ColumnDatabase* db =
        config.compressed ? compressed.get() : uncompressed.get();
    harness::SeriesResult s;
    s.name = config.code;
    for (const core::StarQuery& q : ssb::AllQueries()) {
      s.by_query[q.id] = harness::TimeCell(
          [&] {
            auto r = core::ExecuteStarQuery(db->Schema(), q, config.exec);
            CSTORE_CHECK(r.ok());
          },
          args.repetitions, &db->files().stats());
    }
    std::fprintf(stderr, "  %s done (avg %.1f ms)\n", config.code,
                 s.AverageSeconds() * 1e3);
    series.push_back(std::move(s));
  }

  harness::PrintFigure("Figure 7 — optimization breakdown (ms)", ids, series);

  auto avg = [&](int i) { return series[i].AverageSeconds(); };
  std::printf("\nFactor attribution (averages):\n");
  std::printf("  block iteration  (tICL->TICL): %.2fx\n", avg(1) / avg(0));
  std::printf("  invisible join   (tICL->tiCL): %.2fx\n", avg(2) / avg(0));
  std::printf("  compression      (TiCL->TicL): %.2fx\n", avg(5) / avg(3));
  std::printf("  late materialization (TicL->Ticl): %.2fx\n", avg(6) / avg(5));
  std::printf("  everything       (tICL->Ticl): %.2fx\n", avg(6) / avg(0));
  return 0;
}
