// Figure 7: C-Store optimizations removed one by one (§6.3.2).
//
// Configuration code: T/t = tuple/block iteration, I/i = invisible join
// on/off, C/c = compressed/uncompressed storage, L/l = late/early
// materialization. The paper's seven steps:
//
//   tICL  full optimizations            TICL  block iteration removed
//   tiCL  invisible join removed        TiCL  both removed
//   ticL  compression also removed      TicL  ...
//   Ticl  everything removed (the column-store behaving like a row-store)
//
// Paper shape: compression ~2x on average (an order of magnitude on flight
// 1), late materialization ~3x, block iteration and invisible join ~1.5x.
//
// Both storage modes register as engine designs; each configuration is a
// session whose ExecConfig carries the knobs. Zone-map telemetry comes from
// each query's own QueryStats — the old pattern of diffing the process-wide
// ScanCounters around a cell is gone.
#include <cstdio>
#include <memory>
#include <string>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "util/table_printer.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Figure 7 — C-Store optimization breakdown, SF=%.3g (ms), "
      "parallel series at %u threads\n",
      args.scale_factor, args.threads);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto compressed = ssb::ColumnDatabase::Build(
                        data, col::CompressionMode::kFull, args.pool_pages)
                        .ValueOrDie();
  auto uncompressed = ssb::ColumnDatabase::Build(
                          data, col::CompressionMode::kNone, args.pool_pages)
                          .ValueOrDie();
  compressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  uncompressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  engine::Engine engine;
  engine.Register("CS/C", engine::MakeColumnStoreDesign(compressed->Schema()));
  engine.Register("CS/c",
                  engine::MakeColumnStoreDesign(uncompressed->Schema()));

  struct Config {
    std::string code;
    bool compressed;
    core::ExecConfig exec;
  };
  // The paper's seven single-core steps (num_threads pinned to 1), plus the
  // morsel-driven parallel run of the full-optimization configuration.
  // Brace order: {block_iteration, invisible_join, late_materialization,
  // use_simd, num_threads}. use_simd stays on in every series — the
  // scalar-twin runs come from CSTORE_SIMD=off at the process level (CI
  // diffs the two JSONs for hash identity).
  std::vector<Config> configs = {
      {"tICL", true, {true, true, true, true, 1}},
      {"TICL", true, {false, true, true, true, 1}},
      {"tiCL", true, {true, false, true, true, 1}},
      {"TiCL", true, {false, false, true, true, 1}},
      {"ticL", false, {true, false, true, true, 1}},
      {"TicL", false, {false, false, true, true, 1}},
      {"Ticl", false, {false, false, false, true, 1}},
  };
  if (args.threads > 1) {
    configs.push_back({"tICL-p" + std::to_string(args.threads), true,
                       {true, true, true, true, args.threads}});
  }

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  std::vector<harness::SeriesResult> series;
  for (const Config& config : configs) {
    auto session = engine.OpenSession(config.compressed ? "CS/C" : "CS/c");
    session->config() = config.exec;
    harness::SeriesResult s;
    s.name = config.code;
    for (const plan::Plan& q : ssb::AllQueries()) {
      uint64_t result_hash = 0;
      harness::CellResult cell = harness::TimeCell(
          [&] {
            auto outcome = session->Run(q);
            CSTORE_CHECK(outcome.ok());
            result_hash = outcome.ValueOrDie().result.Hash();
            return outcome.ValueOrDie().stats;
          },
          args.repetitions);
      cell.result_hash = result_hash;
      s.by_query[q.id()] = cell;
    }
    std::fprintf(stderr, "  %s done (avg %.1f ms)\n", config.code.c_str(),
                 s.AverageSeconds() * 1e3);
    series.push_back(std::move(s));
  }

  harness::PrintFigure("Figure 7 — optimization breakdown (ms)", ids, series);

  // Zone-map effectiveness of the first (full-optimization) configuration:
  // pages a scan skipped outright, accepted whole from stats, or decoded.
  {
    util::TablePrinter zm(series[0].name +
                          " zone maps — pages skipped / all-match / scanned");
    std::vector<std::string> header = {"counter"};
    for (const auto& id : ids) header.push_back(id);
    zm.SetHeader(header);
    const char* row_names[] = {"skipped", "all-match", "scanned"};
    for (int r = 0; r < 3; ++r) {
      std::vector<std::string> row = {row_names[r]};
      for (const auto& id : ids) {
        const harness::CellResult& cell = series[0].by_query[id];
        const uint64_t v = r == 0   ? cell.pages_skipped
                           : r == 1 ? cell.pages_all_match
                                    : cell.pages_scanned;
        row.push_back(std::to_string(v));
      }
      zm.AddRow(row);
    }
    zm.Print();
  }

  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "fig7", args, ids, series);
  }
  if (args.threads > 1) {
    harness::PrintSpeedups("Figure 7 — morsel-driven scaling", ids, series[0],
                           series.back());
  }

  auto avg = [&](int i) { return series[i].AverageSeconds(); };
  std::printf("\nFactor attribution (averages):\n");
  std::printf("  block iteration  (tICL->TICL): %.2fx\n", avg(1) / avg(0));
  std::printf("  invisible join   (tICL->tiCL): %.2fx\n", avg(2) / avg(0));
  std::printf("  compression      (TiCL->TicL): %.2fx\n", avg(5) / avg(3));
  std::printf("  late materialization (TicL->Ticl): %.2fx\n", avg(6) / avg(5));
  std::printf("  everything       (tICL->Ticl): %.2fx\n", avg(6) / avg(0));
  return 0;
}
