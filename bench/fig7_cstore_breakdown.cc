// Figure 7: C-Store optimizations removed one by one (§6.3.2).
//
// Configuration code: T/t = tuple/block iteration, I/i = invisible join
// on/off, C/c = compressed/uncompressed storage, L/l = late/early
// materialization. The paper's seven steps:
//
//   tICL  full optimizations            TICL  block iteration removed
//   tiCL  invisible join removed        TiCL  both removed
//   ticL  compression also removed      TicL  ...
//   Ticl  everything removed (the column-store behaving like a row-store)
//
// Paper shape: compression ~2x on average (an order of magnitude on flight
// 1), late materialization ~3x, block iteration and invisible join ~1.5x.
#include <cstdio>
#include <string>

#include "core/star_executor.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf(
      "Figure 7 — C-Store optimization breakdown, SF=%.3g (ms), "
      "parallel series at %u threads\n",
      args.scale_factor, args.threads);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  auto compressed = ssb::ColumnDatabase::Build(
                        data, col::CompressionMode::kFull, args.pool_pages)
                        .ValueOrDie();
  auto uncompressed = ssb::ColumnDatabase::Build(
                          data, col::CompressionMode::kNone, args.pool_pages)
                          .ValueOrDie();
  compressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);
  uncompressed->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  struct Config {
    std::string code;
    bool compressed;
    core::ExecConfig exec;
  };
  // The paper's seven single-core steps (num_threads pinned to 1), plus the
  // morsel-driven parallel run of the full-optimization configuration.
  std::vector<Config> configs = {
      {"tICL", true, {true, true, true, 1}},
      {"TICL", true, {false, true, true, 1}},
      {"tiCL", true, {true, false, true, 1}},
      {"TiCL", true, {false, false, true, 1}},
      {"ticL", false, {true, false, true, 1}},
      {"TicL", false, {false, false, true, 1}},
      {"Ticl", false, {false, false, false, 1}},
  };
  if (args.threads > 1) {
    configs.push_back({"tICL-p" + std::to_string(args.threads), true,
                       {true, true, true, args.threads}});
  }

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  std::vector<harness::SeriesResult> series;
  for (const Config& config : configs) {
    ssb::ColumnDatabase* db =
        config.compressed ? compressed.get() : uncompressed.get();
    harness::SeriesResult s;
    s.name = config.code;
    for (const core::StarQuery& q : ssb::AllQueries()) {
      s.by_query[q.id] = harness::TimeCell(
          [&] {
            auto r = core::ExecuteStarQuery(db->Schema(), q, config.exec);
            CSTORE_CHECK(r.ok());
          },
          args.repetitions, &db->files().stats());
    }
    std::fprintf(stderr, "  %s done (avg %.1f ms)\n", config.code.c_str(),
                 s.AverageSeconds() * 1e3);
    series.push_back(std::move(s));
  }

  harness::PrintFigure("Figure 7 — optimization breakdown (ms)", ids, series);
  if (args.threads > 1) {
    harness::PrintSpeedups("Figure 7 — morsel-driven scaling", ids, series[0],
                           series.back());
  }

  auto avg = [&](int i) { return series[i].AverageSeconds(); };
  std::printf("\nFactor attribution (averages):\n");
  std::printf("  block iteration  (tICL->TICL): %.2fx\n", avg(1) / avg(0));
  std::printf("  invisible join   (tICL->tiCL): %.2fx\n", avg(2) / avg(0));
  std::printf("  compression      (TiCL->TicL): %.2fx\n", avg(5) / avg(3));
  std::printf("  late materialization (TicL->Ticl): %.2fx\n", avg(6) / avg(5));
  std::printf("  everything       (tICL->Ticl): %.2fx\n", avg(6) / avg(0));
  return 0;
}
