#!/usr/bin/env python3
"""Soft benchmark-regression check.

Diffs a fresh bench_results.json (written by a figure bench via --json)
against a committed baseline and warns when a (series, query) cell got
slower than --threshold x. Timings are machine-relative, so this is a
*soft* gate: it always exits 0 on a successful comparison and is meant to
make regressions visible in CI logs and artifacts, not to fail the build.
Exit 1 only means the inputs themselves were unusable.

Usage:
  check_bench_regression.py --baseline bench/baseline/fig7_sf0.005.json \
      --current bench_results.json [--threshold 1.5]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def by_name(doc):
    return {s["name"]: s.get("queries", {}) for s in doc.get("series", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="warn when current_ms > threshold * baseline_ms")
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    for key in ("scale_factor", "threads", "disk_mbps"):
        if base.get(key) != curr.get(key):
            print(f"note: {key} differs (baseline {base.get(key)}, "
                  f"current {curr.get(key)}) — ratios may not be comparable")

    base_series = by_name(base)
    curr_series = by_name(curr)
    regressions = []
    compared = 0
    print(f"{'series':<10} {'query':<6} {'base ms':>9} {'curr ms':>9} {'ratio':>7}")
    for name, queries in sorted(curr_series.items()):
        if name not in base_series:
            print(f"note: series {name!r} not in baseline, skipped")
            continue
        for q, cell in sorted(queries.items()):
            b = base_series[name].get(q)
            if b is None or b.get("ms", 0) <= 0:
                continue
            ratio = cell["ms"] / b["ms"]
            compared += 1
            flag = "  <-- SLOWER" if ratio > args.threshold else ""
            print(f"{name:<10} {q:<6} {b['ms']:>9.3f} {cell['ms']:>9.3f} "
                  f"{ratio:>6.2f}x{flag}")
            if ratio > args.threshold:
                regressions.append((name, q, ratio))

    if not compared:
        print("check_bench_regression: nothing to compare", file=sys.stderr)
        sys.exit(1)
    if regressions:
        print(f"\nWARNING: {len(regressions)} cell(s) slower than "
              f"{args.threshold}x baseline (soft threshold — not failing):")
        for name, q, ratio in regressions:
            print(f"  {name} {q}: {ratio:.2f}x")
    else:
        print(f"\nOK: all {compared} cells within {args.threshold}x of baseline")
    sys.exit(0)


if __name__ == "__main__":
    main()
