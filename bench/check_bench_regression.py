#!/usr/bin/env python3
"""Benchmark regression check: soft on timings, hard on answers.

Two modes:

1. Baseline diff (default): compares a fresh bench_results.json (written by a
   figure bench via --json) against a committed baseline.
     * Timings are machine-relative, so slow cells only WARN (exit 0) when
       current_ms > --threshold x baseline_ms.
     * Result hashes are machine-independent: when both sides carry a
       result_hash for a (series, query) cell and they differ, the answer
       itself changed — that is a correctness failure and the script exits 2.

2. --diff-hashes A B: compares only the result hashes of two result files —
   e.g. the fig7 smoke run at 1 thread vs at nproc threads. Every (series,
   query) cell present in both files must hash identically, and within each
   file every parallel series "X-pN" must hash-match its serial twin "X",
   and every sharded series "X-sN" (fig_scale) its single-shard twin
   "X-s1". Any mismatch exits 2.

In both modes, per-client throughput series ("<mode>-cM-clientK", or
"<mode>-cM-aN-clientK" when the run was admission-capped via
fig_throughput --admit N) are hard-checked against that file's
single-client "serial" reference series: a concurrent client computing a
different answer than the serial run — admission-capped or not — is a
correctness failure (exit 2), while queries/sec and timing diffs stay
soft.

Exit codes: 0 = ok (possibly with soft timing warnings), 1 = unusable
inputs, 2 = result-hash mismatch (correctness).

Usage:
  check_bench_regression.py --baseline bench/baseline/fig7_sf0.005.json \
      --current bench_results.json [--threshold 1.5]
  check_bench_regression.py --diff-hashes run_t1.json run_tN.json
"""

import argparse
import json
import re
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def by_name(doc):
    return {s["name"]: s.get("queries", {}) for s in doc.get("series", [])}


def cell_hash(cell):
    """Returns the cell's result hash, or None when absent/unrecorded."""
    h = cell.get("result_hash")
    if h is None or h == "0" * 16 or h == 0:
        return None
    return h


def check_parallel_twins(series, label):
    """Within one file: series 'X-pN' must hash-match series 'X'."""
    mismatches = []
    for name, queries in sorted(series.items()):
        m = re.fullmatch(r"(.+)-p\d+", name)
        if not m or m.group(1) not in series:
            continue
        twin = series[m.group(1)]
        for q, cell in sorted(queries.items()):
            h, ht = cell_hash(cell), cell_hash(twin.get(q, {}))
            if h is not None and ht is not None and h != ht:
                mismatches.append((label, name, m.group(1), q, h, ht))
    return mismatches


def check_shard_twins(series, label):
    """Within one file: every sharded series 'X-sN' (fig_scale) must
    hash-match its single-shard twin 'X-s1' — scatter-gather execution must
    never change an answer, whatever the partition count."""
    mismatches = []
    for name, queries in sorted(series.items()):
        m = re.fullmatch(r"(.+)-s(\d+)", name)
        if not m or m.group(2) == "1":
            continue
        twin = series.get(m.group(1) + "-s1")
        if twin is None:
            continue
        for q, cell in sorted(queries.items()):
            h, ht = cell_hash(cell), cell_hash(twin.get(q, {}))
            if h is not None and ht is not None and h != ht:
                mismatches.append((label, name, m.group(1) + "-s1", q, h, ht))
    return mismatches


def check_client_twins(series, label):
    """Within one file: every per-client throughput series
    ('<mode>-cM-clientK', or '<mode>-cM-aN-clientK' for admission-capped
    volleys) must hash-match the single-client 'serial' reference series —
    concurrency and admission gating must never change an answer."""
    mismatches = []
    serial = series.get("serial")
    if serial is None:
        return mismatches
    for name, queries in sorted(series.items()):
        if not re.fullmatch(r".+-c\d+(-a\d+)?-client\d+", name):
            continue
        for q, cell in sorted(queries.items()):
            h, ht = cell_hash(cell), cell_hash(serial.get(q, {}))
            if h is not None and ht is not None and h != ht:
                mismatches.append((label, name, "serial", q, h, ht))
    return mismatches


def diff_hashes(path_a, path_b):
    a, b = load(path_a), load(path_b)
    if a.get("scale_factor") != b.get("scale_factor"):
        print(f"check_bench_regression: scale_factor differs "
              f"({a.get('scale_factor')} vs {b.get('scale_factor')}) — "
              f"hashes are not comparable", file=sys.stderr)
        sys.exit(1)
    sa, sb = by_name(a), by_name(b)
    mismatches = []
    compared = 0
    for name in sorted(set(sa) & set(sb)):
        for q in sorted(set(sa[name]) & set(sb[name])):
            ha, hb = cell_hash(sa[name][q]), cell_hash(sb[name][q])
            if ha is None or hb is None:
                continue
            compared += 1
            if ha != hb:
                mismatches.append(("cross-file", name, name, q, ha, hb))
    for path, series in ((path_a, sa), (path_b, sb)):
        mismatches += check_parallel_twins(series, path)
        mismatches += check_shard_twins(series, path)
        mismatches += check_client_twins(series, path)
    if not compared:
        print("check_bench_regression: no comparable result hashes",
              file=sys.stderr)
        sys.exit(1)
    if mismatches:
        print(f"FAIL: {len(mismatches)} result-hash mismatch(es) — answers "
              f"differ between runs/series:")
        for where, name, other, q, h1, h2 in mismatches:
            print(f"  [{where}] {name} vs {other} {q}: {h1} != {h2}")
        sys.exit(2)
    print(f"OK: {compared} cross-file cells (plus parallel-vs-serial, "
          f"sharded-vs-s1, and client-vs-serial twins) hash-identical "
          f"between {path_a} and {path_b}")
    sys.exit(0)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline")
    ap.add_argument("--current")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="warn when current_ms > threshold * baseline_ms")
    ap.add_argument("--diff-hashes", nargs=2, metavar=("A", "B"),
                    help="compare only result hashes of two result files")
    args = ap.parse_args()

    if args.diff_hashes:
        diff_hashes(*args.diff_hashes)
        return
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --diff-hashes)")

    base = load(args.baseline)
    curr = load(args.current)
    for key in ("scale_factor", "threads", "disk_mbps"):
        if base.get(key) != curr.get(key):
            print(f"note: {key} differs (baseline {base.get(key)}, "
                  f"current {curr.get(key)}) — ratios may not be comparable")
    # Result hashes are a function of the data, so they are only comparable
    # across runs at the same scale factor; a different SF legitimately
    # computes different answers and must not trip the correctness gate.
    same_data = base.get("scale_factor") == curr.get("scale_factor")
    if not same_data:
        print("note: scale_factor differs — result hashes not compared "
              "against the baseline (within-file twin checks still apply)")

    base_series = by_name(base)
    curr_series = by_name(curr)
    regressions = []
    touch_regressions = []
    hash_mismatches = []
    compared = 0
    print(f"{'series':<10} {'query':<6} {'base ms':>9} {'curr ms':>9} {'ratio':>7}")
    for name, queries in sorted(curr_series.items()):
        if name not in base_series:
            print(f"note: series {name!r} not in baseline, skipped")
            continue
        for q, cell in sorted(queries.items()):
            b = base_series[name].get(q)
            if b is None or b.get("ms", 0) <= 0:
                continue
            ratio = cell["ms"] / b["ms"]
            compared += 1
            hb, hc = cell_hash(b), cell_hash(cell)
            hash_bad = same_data and hb is not None and hc is not None \
                and hb != hc
            if hash_bad:
                hash_mismatches.append((name, q, hb, hc))
            flag = "  <-- WRONG ANSWER" if hash_bad else (
                "  <-- SLOWER" if ratio > args.threshold else "")
            print(f"{name:<10} {q:<6} {b['ms']:>9.3f} {cell['ms']:>9.3f} "
                  f"{ratio:>6.2f}x{flag}")
            if ratio > args.threshold:
                regressions.append((name, q, ratio))
            # values_examined is a machine-independent work metric (values
            # scanned + gathered + aggregated + delta rows); unlike timings
            # it only moves when the plans genuinely touch more data. Warn
            # (soft) when it grows past the same threshold.
            vb, vc = b.get("values_examined"), cell.get("values_examined")
            if same_data and vb and vc and vc > args.threshold * vb:
                touch_regressions.append((name, q, vc / vb))
    hash_mismatches += [(n, q, h1, h2) for _, n, _, q, h1, h2
                        in check_parallel_twins(curr_series, args.current)]
    hash_mismatches += [(n, q, h1, h2) for _, n, _, q, h1, h2
                        in check_shard_twins(curr_series, args.current)]
    hash_mismatches += [(n, q, h1, h2) for _, n, _, q, h1, h2
                        in check_client_twins(curr_series, args.current)]

    if not compared:
        print("check_bench_regression: nothing to compare", file=sys.stderr)
        sys.exit(1)
    if hash_mismatches:
        print(f"\nFAIL: {len(hash_mismatches)} result-hash mismatch(es) — "
              f"the answers changed (hard failure):")
        for name, q, h1, h2 in hash_mismatches:
            print(f"  {name} {q}: {h1} != {h2}")
        sys.exit(2)
    if regressions:
        print(f"\nWARNING: {len(regressions)} cell(s) slower than "
              f"{args.threshold}x baseline (soft threshold — not failing):")
        for name, q, ratio in regressions:
            print(f"  {name} {q}: {ratio:.2f}x")
    if touch_regressions:
        print(f"\nWARNING: {len(touch_regressions)} cell(s) examine more than "
              f"{args.threshold}x the baseline's values (data-touched "
              f"regression — not failing):")
        for name, q, ratio in touch_regressions:
            print(f"  {name} {q}: {ratio:.2f}x values_examined")
    if not regressions and not touch_regressions:
        print(f"\nOK: all {compared} cells within {args.threshold}x of baseline")
    sys.exit(0)


if __name__ == "__main__":
    main()
