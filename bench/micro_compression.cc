// Micro-benchmarks (google-benchmark): codec encode/decode/scan throughput.
//
// Supports the §5.1 claims: RLE on sorted data decodes run-at-a-time and
// predicates evaluate per run; bit-packing trades decode work for bytes.
#include <benchmark/benchmark.h>

#include "column/column_table.h"
#include "core/predicate.h"
#include "core/scan.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace {

using namespace cstore;

constexpr size_t kRows = 1 << 20;

/// Test fixture: one column of kRows ints under the requested encoding.
struct ColumnFixture {
  storage::FileManager files;
  storage::BufferPool pool{&files, 4096};
  col::ColumnTable table{&files, &pool, "bench"};

  ColumnFixture(bool sorted, col::CompressionMode mode, int64_t cardinality) {
    util::Rng rng(42);
    std::vector<int64_t> values(kRows);
    for (auto& v : values) v = rng.Uniform(0, cardinality - 1);
    if (sorted) std::sort(values.begin(), values.end());
    CSTORE_CHECK(
        table.AddIntColumn("c", DataType::kInt32, values, mode).ok());
  }
};

void BM_ScanPlainUnsorted(benchmark::State& state) {
  ColumnFixture f(false, col::CompressionMode::kNone, 1 << 20);
  util::BitVector bits(kRows);
  for (auto _ : state) {
    auto r = core::ScanInt(f.table.column("c"),
                           core::IntPredicate::Range(0, 1 << 10), true, &bits);
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanPlainUnsorted);

void BM_ScanRleSorted(benchmark::State& state) {
  ColumnFixture f(true, col::CompressionMode::kFull, 1 << 10);
  CSTORE_CHECK(f.table.column("c").info().encoding ==
               compress::Encoding::kRle);
  util::BitVector bits(kRows);
  for (auto _ : state) {
    auto r = core::ScanInt(f.table.column("c"),
                           core::IntPredicate::Range(0, 64), true, &bits);
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanRleSorted);

void BM_ScanBitPacked(benchmark::State& state) {
  ColumnFixture f(false, col::CompressionMode::kFull, 1 << 10);
  CSTORE_CHECK(f.table.column("c").info().encoding ==
               compress::Encoding::kBitPack);
  util::BitVector bits(kRows);
  for (auto _ : state) {
    auto r = core::ScanInt(f.table.column("c"),
                           core::IntPredicate::Range(0, 64), true, &bits);
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanBitPacked);

void BM_DecodeRle(benchmark::State& state) {
  ColumnFixture f(true, col::CompressionMode::kFull, 1 << 10);
  std::vector<int64_t> out;
  for (auto _ : state) {
    out.clear();
    CSTORE_CHECK(f.table.column("c").DecodeAllInts(&out).ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DecodeRle);

void BM_DecodePlain(benchmark::State& state) {
  ColumnFixture f(true, col::CompressionMode::kNone, 1 << 10);
  std::vector<int64_t> out;
  for (auto _ : state) {
    out.clear();
    CSTORE_CHECK(f.table.column("c").DecodeAllInts(&out).ok());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DecodePlain);

}  // namespace

BENCHMARK_MAIN();
