// Codec micro-benchmark on the in-repo harness: encode-aware scan and
// decode throughput per encoding, timed with use_simd on and off.
//
// Supports the §5.1 claims: RLE on sorted data evaluates predicates per run
// (no per-value work at all, so scalar and simd tie); bit-packing trades
// decode work for bytes, and the vector unpack claws that work back. The
// scalar and simd series must hash identically — exit 2 if not.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "column/column_table.h"
#include "core/scan.h"
#include "harness/runner.h"
#include "simd/simd.h"
#include "util/rng.h"

using namespace cstore;

namespace {

constexpr size_t kRows = 1 << 20;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

/// One column of kRows ints under the requested ordering and encoding.
struct ColumnFixture {
  storage::FileManager files;
  storage::BufferPool pool{&files, 4096};
  col::ColumnTable table{&files, &pool, "bench"};

  ColumnFixture(bool sorted, col::CompressionMode mode, int64_t cardinality) {
    util::Rng rng(42);
    std::vector<int64_t> values(kRows);
    for (auto& v : values) v = rng.Uniform(0, cardinality - 1);
    if (sorted) std::sort(values.begin(), values.end());
    CSTORE_CHECK(table.AddIntColumn("c", DataType::kInt32, values, mode).ok());
  }
  const col::StoredColumn& column() const { return table.column("c"); }
};

harness::CellResult ScanCell(const ColumnFixture& f,
                             const core::IntPredicate& pred, bool use_simd,
                             int reps) {
  core::ExecConfig config;
  config.use_simd = use_simd;
  uint64_t hash = 0;
  harness::CellResult cell = harness::TimeCell(
      [&] {
        core::ExecContext ctx(config);
        util::BitVector bits(kRows);
        auto r = core::ScanInt(f.column(), pred, /*block_iteration=*/true,
                               &bits, &ctx);
        CSTORE_CHECK(r.ok());
        uint64_t h = 0xcbf29ce484222325ULL;
        bits.ForEachSet([&](uint32_t pos) { h = FnvMix(h, pos); });
        hash = h;
        return ctx.Stats();
      },
      reps);
  cell.result_hash = hash;
  return cell;
}

harness::CellResult DecodeCell(const ColumnFixture& f, bool use_simd,
                               int reps) {
  uint64_t hash = 0;
  harness::CellResult cell = harness::TimeCell(
      [&] {
        // Page-at-a-time decode through the raw page API — the layer the
        // use_simd flag reaches (kPlainInt32 widen / kBitPack unpack).
        core::ExecContext ctx{};
        col::ColumnReader reader(&f.column(), &ctx.telemetry);
        std::vector<int64_t> out;
        uint64_t h = 0xcbf29ce484222325ULL;
        uint32_t row = 0;
        while (row < f.column().num_values()) {
          reader.SeekToRow(row);
          out.resize(reader.view().num_values());
          const uint32_t n = reader.view().DecodeInt64(out.data(), use_simd);
          for (uint32_t i = 0; i < n; ++i) {
            h = FnvMix(h, static_cast<uint64_t>(out[i]));
          }
          row += n;
        }
        hash = h;
        return ctx.Stats();
      },
      reps);
  cell.result_hash = hash;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  if (args.repetitions < 3) args.repetitions = 3;
  std::printf("micro_compression — %zu rows, reps=%d, isa=%s\n", kRows,
              args.repetitions, std::string(simd::ActiveIsa()).c_str());

  ColumnFixture plain(false, col::CompressionMode::kNone, 1 << 20);
  ColumnFixture rle(true, col::CompressionMode::kFull, 1 << 10);
  ColumnFixture packed(false, col::CompressionMode::kFull, 1 << 10);
  CSTORE_CHECK(rle.column().info().encoding == compress::Encoding::kRle);
  CSTORE_CHECK(packed.column().info().encoding ==
               compress::Encoding::kBitPack);

  const core::IntPredicate wide = core::IntPredicate::Range(0, 1 << 10);
  const core::IntPredicate narrow = core::IntPredicate::Range(0, 64);

  const std::vector<std::string> ids = {"scan_plain", "scan_rle",
                                        "scan_bitpack", "decode_plain",
                                        "decode_bitpack", "decode_rle"};
  harness::SeriesResult scalar, simd_s;
  scalar.name = "scalar";
  simd_s.name = "simd";
  for (const bool use_simd : {false, true}) {
    harness::SeriesResult& s = use_simd ? simd_s : scalar;
    s.by_query["scan_plain"] = ScanCell(plain, wide, use_simd, args.repetitions);
    s.by_query["scan_rle"] = ScanCell(rle, narrow, use_simd, args.repetitions);
    s.by_query["scan_bitpack"] =
        ScanCell(packed, narrow, use_simd, args.repetitions);
    s.by_query["decode_plain"] = DecodeCell(plain, use_simd, args.repetitions);
    s.by_query["decode_bitpack"] =
        DecodeCell(packed, use_simd, args.repetitions);
    s.by_query["decode_rle"] = DecodeCell(rle, use_simd, args.repetitions);
  }

  const std::vector<harness::SeriesResult> series = {scalar, simd_s};
  harness::PrintFigure("compression microbench (ms per pass)", ids, series);

  int rc = 0;
  for (const auto& id : ids) {
    if (scalar.by_query.at(id).result_hash != simd_s.by_query.at(id).result_hash) {
      std::fprintf(stderr, "HASH MISMATCH %s between scalar and simd\n",
                   id.c_str());
      rc = 2;
    }
  }
  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "micro_compression", args, ids,
                              series);
  }
  return rc;
}
