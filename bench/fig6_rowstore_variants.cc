// Figure 6: the row-store physical designs of §4 across the SSBM.
//
//   T     traditional
//   T(B)  traditional with bitmap-biased plans
//   MV    per-query materialized views
//   VP    full vertical partitioning
//   AI    index-only plans ("all indexes")
//
// Paper shape (averages): MV < T < T(B) < VP << AI.
//
// All five designs register with one engine::Engine; each series is a
// Session whose per-query QueryStats provide the I/O numbers (attributed
// per query, not diffed from the FileManager's global counters).
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>

#include "engine/designs.h"
#include "engine/engine.h"
#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "ssb/row_exec.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 6 — row-store physical designs, SF=%.3g (times in ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  ssb::RowDbOptions options;
  options.materialized_views = true;
  options.vertical_partitions = true;
  options.all_indexes = true;
  options.bitmap_indexes = true;
  options.pool_pages = args.pool_pages;
  auto db = ssb::RowDatabase::Build(data, options).ValueOrDie();
  db->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  const std::pair<const char*, ssb::RowDesign> designs[] = {
      {"T", ssb::RowDesign::kTraditional},
      {"T(B)", ssb::RowDesign::kTraditionalBitmap},
      {"MV", ssb::RowDesign::kMaterializedViews},
      {"VP", ssb::RowDesign::kVerticalPartitioning},
      {"AI", ssb::RowDesign::kIndexOnly},
  };

  core::ExecConfig serial_cfg = core::ExecConfig::AllOn();
  serial_cfg.num_threads = 1;
  engine::EngineOptions engine_options;
  engine_options.default_config = serial_cfg;
  engine::Engine engine(engine_options);
  for (const auto& [name, design] : designs) {
    engine.Register(name, engine::MakeRowStoreDesign(db.get(), design));
  }

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id());

  // Every design runs serial (the paper's System X) and, when --threads
  // gives more than one worker, again morsel-parallel — the symmetric
  // counterpart of the column-store's "-pN" series, so thread sweeps no
  // longer flatter one layout.
  auto run_series = [&](const char* name, unsigned threads) {
    harness::SeriesResult s;
    s.name = name;
    if (threads > 1) s.name += "-p" + std::to_string(threads);
    auto session = engine.OpenSession(name);
    session->config().num_threads = threads;
    for (const plan::Plan& q : ssb::AllQueries()) {
      uint64_t hash = 0;
      harness::CellResult cell = harness::TimeCell(
          [&] {
            auto outcome = session->Run(q);
            CSTORE_CHECK(outcome.ok());
            hash = outcome.ValueOrDie().result.Hash();
            return outcome.ValueOrDie().stats;
          },
          args.repetitions);
      cell.result_hash = hash;
      s.by_query[q.id()] = cell;
    }
    std::fprintf(stderr, "  %s done (avg %.1f ms)\n", s.name.c_str(),
                 s.AverageSeconds() * 1e3);
    return s;
  };

  std::vector<harness::SeriesResult> series;
  for (const auto& [name, design] : designs) {
    series.push_back(run_series(name, 1));
  }
  if (args.threads > 1) {
    for (const auto& [name, design] : designs) {
      series.push_back(run_series(name, args.threads));
    }
  }

  harness::PrintFigure("Figure 6 — row-store designs (ms)", ids, series,
                       /*show_io=*/true);
  if (args.threads > 1) {
    const size_t n = std::size(designs);
    for (size_t d = 0; d < n; ++d) {
      harness::PrintSpeedups(
          std::string("Figure 6 — ") + designs[d].first +
              " morsel-driven scaling",
          ids, series[d], series[n + d]);
    }
  }
  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "fig6", args, ids, series);
  }
  return 0;
}
