// Figure 6: the row-store physical designs of §4 across the SSBM.
//
//   T     traditional
//   T(B)  traditional with bitmap-biased plans
//   MV    per-query materialized views
//   VP    full vertical partitioning
//   AI    index-only plans ("all indexes")
//
// Paper shape (averages): MV < T < T(B) < VP << AI.
#include <cstdio>

#include "harness/runner.h"
#include "ssb/column_db.h"
#include "ssb/generator.h"
#include "ssb/queries.h"
#include "ssb/row_db.h"
#include "ssb/row_exec.h"

using namespace cstore;

int main(int argc, char** argv) {
  const harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  std::printf("Figure 6 — row-store physical designs, SF=%.3g (times in ms)\n",
              args.scale_factor);

  ssb::GenParams params;
  params.scale_factor = args.scale_factor;
  const ssb::SsbData data = ssb::Generate(params);

  ssb::RowDbOptions options;
  options.materialized_views = true;
  options.vertical_partitions = true;
  options.all_indexes = true;
  options.bitmap_indexes = true;
  options.pool_pages = args.pool_pages;
  auto db = ssb::RowDatabase::Build(data, options).ValueOrDie();
  db->files().SetSimulatedDiskBandwidth(args.disk_mbps);

  const std::pair<const char*, ssb::RowDesign> designs[] = {
      {"T", ssb::RowDesign::kTraditional},
      {"T(B)", ssb::RowDesign::kTraditionalBitmap},
      {"MV", ssb::RowDesign::kMaterializedViews},
      {"VP", ssb::RowDesign::kVerticalPartitioning},
      {"AI", ssb::RowDesign::kIndexOnly},
  };

  std::vector<std::string> ids;
  for (const auto& q : ssb::AllQueries()) ids.push_back(q.id);

  std::vector<harness::SeriesResult> series;
  for (const auto& [name, design] : designs) {
    harness::SeriesResult s;
    s.name = name;
    for (const core::StarQuery& q : ssb::AllQueries()) {
      s.by_query[q.id] = harness::TimeCell(
          [&, d = design] {
            auto r = ssb::ExecuteRowQuery(*db, q, d);
            CSTORE_CHECK(r.ok());
          },
          args.repetitions, &db->files().stats());
    }
    std::fprintf(stderr, "  %s done (avg %.1f ms)\n", name,
                 s.AverageSeconds() * 1e3);
    series.push_back(std::move(s));
  }

  harness::PrintFigure("Figure 6 — row-store designs (ms)", ids, series,
                       /*show_io=*/true);
  return 0;
}
