// Micro-benchmark (google-benchmark): block iteration vs tuple-at-a-time.
//
// §5.3: iterating values as arrays avoids the 1-2 function calls per value
// of Volcano-style interfaces. The paper measures 5-50% end to end; the
// isolated gap on a pure scan is larger.
#include <benchmark/benchmark.h>

#include "column/block_cursor.h"
#include "column/column_table.h"
#include "core/predicate.h"
#include "core/scan.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace {

using namespace cstore;

constexpr size_t kRows = 1 << 20;

struct Fixture {
  storage::FileManager files;
  storage::BufferPool pool{&files, 4096};
  col::ColumnTable table{&files, &pool, "bench"};

  Fixture() {
    util::Rng rng(7);
    std::vector<int64_t> values(kRows);
    for (auto& v : values) v = rng.Uniform(0, 1 << 16);
    CSTORE_CHECK(table
                     .AddIntColumn("c", DataType::kInt32, values,
                                   col::CompressionMode::kNone)
                     .ok());
  }
};

void BM_PredicateBlockIteration(benchmark::State& state) {
  Fixture f;
  util::BitVector bits(kRows);
  for (auto _ : state) {
    auto r = core::ScanInt(f.table.column("c"),
                           core::IntPredicate::Range(0, 1 << 12),
                           /*block_iteration=*/true, &bits);
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PredicateBlockIteration);

void BM_PredicateTupleAtATime(benchmark::State& state) {
  Fixture f;
  util::BitVector bits(kRows);
  for (auto _ : state) {
    auto r = core::ScanInt(f.table.column("c"),
                           core::IntPredicate::Range(0, 1 << 12),
                           /*block_iteration=*/false, &bits);
    benchmark::DoNotOptimize(r.ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PredicateTupleAtATime);

void BM_SumViaNextBlock(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    col::BlockCursor cursor(&f.table.column("c"));
    int64_t sum = 0;
    uint32_t n = 0;
    const int64_t* block;
    while ((block = cursor.NextBlock(&n)), n > 0) {
      for (uint32_t i = 0; i < n; ++i) sum += block[i];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SumViaNextBlock);

void BM_SumViaGetNext(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    col::BlockCursor cursor(&f.table.column("c"));
    int64_t sum = 0, v = 0;
    while (cursor.GetNext(&v)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SumViaGetNext);

}  // namespace

BENCHMARK_MAIN();
