// Kernel micro-benchmark: scalar vs SIMD vs tuple-at-a-time, on the in-repo
// harness (no external benchmark framework).
//
// §5.3's block-iteration claim and this repo's SIMD layer measured in one
// place: every kernel row is timed three ways —
//   scalar  block iteration, ExecConfig::use_simd = false (reference loops)
//   simd    block iteration, use_simd = true (src/simd kernels; which ISA
//           actually ran is printed from simd::ActiveIsa())
//   tuple   one getNext() call per value (the paper's Volcano strawman)
// — and every way must produce the same result hash ("same bits, fewer
// cycles"); the binary exits non-zero if they diverge.
//
// Flags: the usual harness flags (--reps, --json <path>) plus
//   --min-speedup <x>   exit 3 unless simd beats scalar by >= x on the
//                       range_i32 row. Enforced only when vector dispatch is
//                       active (simd::VectorIsaActive()) — the scalar
//                       fallback build trivially ties and must still pass.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "column/block_cursor.h"
#include "column/column_table.h"
#include "core/gather.h"
#include "core/scan.h"
#include "harness/runner.h"
#include "simd/simd.h"
#include "util/rng.h"

using namespace cstore;

namespace {

constexpr size_t kRows = 1 << 20;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

uint64_t HashBits(const util::BitVector& bits) {
  uint64_t h = 0xcbf29ce484222325ULL;
  bits.ForEachSet([&](uint32_t pos) { h = FnvMix(h, pos); });
  return h;
}

uint64_t HashValues(const std::vector<int64_t>& values) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int64_t v : values) h = FnvMix(h, static_cast<uint64_t>(v));
  return h;
}

struct Fixture {
  storage::FileManager files;
  storage::BufferPool pool{&files, 4096};
  col::ColumnTable table{&files, &pool, "bench"};
  util::BitVector sparse_sel{kRows};
  util::BitVector dense_sel{kRows};

  Fixture() {
    util::Rng rng(7);
    std::vector<int64_t> i32(kRows), i64(kRows), packed(kRows);
    for (auto& v : i32) v = rng.Uniform(0, 1 << 16);
    for (auto& v : i64) v = rng.Uniform(0, int64_t{1} << 40);
    for (auto& v : packed) v = rng.Uniform(0, 900);
    CSTORE_CHECK(table
                     .AddIntColumn("i32", DataType::kInt32, i32,
                                   col::CompressionMode::kNone)
                     .ok());
    CSTORE_CHECK(table
                     .AddIntColumn("i64", DataType::kInt64, i64,
                                   col::CompressionMode::kNone)
                     .ok());
    CSTORE_CHECK(table
                     .AddIntColumn("packed", DataType::kInt32, packed,
                                   col::CompressionMode::kFull)
                     .ok());
    CSTORE_CHECK(table.column("packed").info().encoding ==
                 compress::Encoding::kBitPack);
    const char* regions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                             "MIDDLE EAST"};
    std::vector<std::string> chars(kRows);
    for (auto& v : chars) v = regions[rng.Uniform(0, 4)];
    CSTORE_CHECK(
        table.AddCharColumn("region", 12, chars, col::CompressionMode::kNone)
            .ok());
    for (size_t i = 0; i < kRows; ++i) {
      if (rng.Bernoulli(0.01)) sparse_sel.Set(i);
      if (rng.Bernoulli(0.6)) dense_sel.Set(i);
    }
  }
};

/// One timed cell: runs `fn` (which returns the run's result hash) under
/// the harness protocol and records hash + per-rep telemetry.
harness::CellResult RunCell(const core::ExecConfig& config, int reps,
                            const std::function<uint64_t(core::ExecContext&)>& fn) {
  uint64_t hash = 0;
  harness::CellResult cell = harness::TimeCell(
      [&] {
        core::ExecContext ctx(config);
        hash = fn(ctx);
        return ctx.Stats();
      },
      reps);
  cell.result_hash = hash;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchArgs args = harness::BenchArgs::Parse(argc, argv);
  if (args.repetitions < 3) args.repetitions = 3;
  double min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[i + 1]);
    }
  }

  std::printf("micro_block_iteration — %zu rows, reps=%d, isa=%s%s\n", kRows,
              args.repetitions, std::string(simd::ActiveIsa()).c_str(),
              simd::VectorIsaActive() ? "" : " (scalar dispatch)");

  Fixture f;
  const core::IntPredicate range_i32 = core::IntPredicate::Range(0, 1 << 12);
  const core::IntPredicate range_i64 =
      core::IntPredicate::Range(0, int64_t{1} << 36);
  const core::IntPredicate range_packed = core::IntPredicate::Range(100, 400);
  core::IntPredicate set8;
  set8.kind = core::IntPredicate::Kind::kSet;
  {
    util::Rng rng(11);
    while (set8.set.size() < 8) set8.AddToSet(rng.Uniform(0, 1 << 16));
    CSTORE_CHECK(set8.has_small_set());
  }
  core::StrPredicate str_in;
  str_in.op = core::PredOp::kIn;
  str_in.values = {"ASIA", "EUROPE"};

  auto scan_cell = [&](const char* column, const core::IntPredicate& pred,
                       bool block, bool use_simd) {
    core::ExecConfig config;
    config.use_simd = use_simd;
    return RunCell(config, args.repetitions, [&](core::ExecContext& ctx) {
      util::BitVector bits(kRows);
      auto r = core::ScanInt(f.table.column(column), pred, block, &bits, &ctx);
      CSTORE_CHECK(r.ok());
      return HashBits(bits);
    });
  };
  auto char_cell = [&](bool block, bool use_simd) {
    core::ExecConfig config;
    config.use_simd = use_simd;
    return RunCell(config, args.repetitions, [&](core::ExecContext& ctx) {
      util::BitVector bits(kRows);
      auto r = core::ScanChar(f.table.column("region"), str_in, block, &bits,
                              &ctx);
      CSTORE_CHECK(r.ok());
      return HashBits(bits);
    });
  };
  auto gather_cell = [&](const util::BitVector& sel, bool use_simd) {
    core::ExecConfig config;
    config.use_simd = use_simd;
    return RunCell(config, args.repetitions, [&](core::ExecContext& ctx) {
      std::vector<int64_t> out;
      CSTORE_CHECK(core::GatherInts(f.table.column("i32"), sel, &out, &ctx).ok());
      return HashValues(out);
    });
  };
  // The original block-vs-Volcano sum: NextBlock() arrays against one
  // GetNext() virtual-ish call per value. No SIMD variant — the row exists
  // to keep §5.3's isolated iteration gap measured.
  auto sum_cell = [&](bool block) {
    return RunCell(core::ExecConfig{}, args.repetitions,
                   [&](core::ExecContext&) {
                     col::BlockCursor cursor(&f.table.column("i32"));
                     int64_t sum = 0;
                     if (block) {
                       uint32_t n = 0;
                       const int64_t* data;
                       while ((data = cursor.NextBlock(&n)), n > 0) {
                         for (uint32_t i = 0; i < n; ++i) sum += data[i];
                       }
                     } else {
                       int64_t v = 0;
                       while (cursor.GetNext(&v)) sum += v;
                     }
                     return static_cast<uint64_t>(sum);
                   });
  };

  const std::vector<std::string> ids = {"range_i32", "range_i64",  "bitpack",
                                        "set8",      "char_in",    "gather_1%",
                                        "gather_60%", "sum"};
  harness::SeriesResult scalar, simd_s, tuple;
  scalar.name = "scalar";
  simd_s.name = "simd";
  tuple.name = "tuple";

  scalar.by_query["range_i32"] = scan_cell("i32", range_i32, true, false);
  simd_s.by_query["range_i32"] = scan_cell("i32", range_i32, true, true);
  tuple.by_query["range_i32"] = scan_cell("i32", range_i32, false, false);

  scalar.by_query["range_i64"] = scan_cell("i64", range_i64, true, false);
  simd_s.by_query["range_i64"] = scan_cell("i64", range_i64, true, true);
  tuple.by_query["range_i64"] = scan_cell("i64", range_i64, false, false);

  scalar.by_query["bitpack"] = scan_cell("packed", range_packed, true, false);
  simd_s.by_query["bitpack"] = scan_cell("packed", range_packed, true, true);
  tuple.by_query["bitpack"] = scan_cell("packed", range_packed, false, false);

  scalar.by_query["set8"] = scan_cell("i32", set8, true, false);
  simd_s.by_query["set8"] = scan_cell("i32", set8, true, true);
  tuple.by_query["set8"] = scan_cell("i32", set8, false, false);

  scalar.by_query["char_in"] = char_cell(true, false);
  simd_s.by_query["char_in"] = char_cell(true, true);
  tuple.by_query["char_in"] = char_cell(false, false);

  scalar.by_query["gather_1%"] = gather_cell(f.sparse_sel, false);
  simd_s.by_query["gather_1%"] = gather_cell(f.sparse_sel, true);
  scalar.by_query["gather_60%"] = gather_cell(f.dense_sel, false);
  simd_s.by_query["gather_60%"] = gather_cell(f.dense_sel, true);

  scalar.by_query["sum"] = sum_cell(true);
  simd_s.by_query["sum"] = sum_cell(true);
  tuple.by_query["sum"] = sum_cell(false);

  const std::vector<harness::SeriesResult> series = {scalar, simd_s, tuple};
  harness::PrintFigure("kernel microbench (ms per pass)", ids, series);

  // Same bits: every iteration mode must hash to the same answer.
  int rc = 0;
  for (const auto& id : ids) {
    const uint64_t h_scalar = scalar.by_query.at(id).result_hash;
    const uint64_t h_simd = simd_s.by_query.at(id).result_hash;
    if (h_scalar != h_simd) {
      std::fprintf(stderr, "HASH MISMATCH %s: scalar=%016llx simd=%016llx\n",
                   id.c_str(),
                   static_cast<unsigned long long>(h_scalar),
                   static_cast<unsigned long long>(h_simd));
      rc = 2;
    }
    auto it = tuple.by_query.find(id);
    if (it != tuple.by_query.end() && it->second.result_hash != h_scalar) {
      std::fprintf(stderr, "HASH MISMATCH %s: tuple differs from scalar\n",
                   id.c_str());
      rc = 2;
    }
  }

  const double ratio = simd_s.by_query.at("range_i32").seconds > 0
                           ? scalar.by_query.at("range_i32").seconds /
                                 simd_s.by_query.at("range_i32").seconds
                           : 0;
  std::printf("range_i32 simd speedup over scalar: %.2fx\n", ratio);
  if (rc == 0 && min_speedup > 0 && simd::VectorIsaActive() &&
      ratio < min_speedup) {
    std::fprintf(stderr, "speedup %.2fx below required %.2fx (isa=%s)\n",
                 ratio, min_speedup, std::string(simd::ActiveIsa()).c_str());
    rc = 3;
  }

  if (!args.json_path.empty()) {
    harness::WriteResultsJson(args.json_path, "micro_block_iteration", args,
                              ids, series);
  }
  return rc;
}
